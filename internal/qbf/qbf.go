// Package qbf decides Q-3SAT, the Π₂ᵖ-complete problem the paper reduces
// from in Theorems 4 and 5:
//
//	given a 3CNF G and a partition of its variables into X and X',
//	does ∀X ∃X' G(X, X') hold?
//
// The decision procedure is the honest exhaustive one — loop over all
// assignments to the universal variables and call a SAT solver on each
// restriction (a simulated NP oracle), exiting early on the first
// counterexample. The package also implements Proposition 4's technical
// restrictions: the paper's reductions require that X is not contained in
// any clause's variable set and contains no clause's variable set.
package qbf

import (
	"fmt"
	"sort"

	"relquery/internal/cnf"
	"relquery/internal/sat"
)

// MaxUniversal bounds the exhaustive ∀-loop.
const MaxUniversal = 30

// Instance is a Q-3SAT instance: ∀X ∃X' G, where X is Universal and X' is
// every other variable of G.
type Instance struct {
	// G is the matrix, a 3CNF formula.
	G *cnf.Formula
	// Universal is the set X of universally quantified variables
	// (1-indexed, distinct, each in 1..G.NumVars).
	Universal []int
}

// Validate checks the instance's well-formedness.
func (inst *Instance) Validate() error {
	if inst.G == nil {
		return fmt.Errorf("qbf: nil formula")
	}
	seen := make(map[int]bool, len(inst.Universal))
	for _, v := range inst.Universal {
		if v < 1 || v > inst.G.NumVars {
			return fmt.Errorf("qbf: universal variable x%d out of range 1..%d", v, inst.G.NumVars)
		}
		if seen[v] {
			return fmt.Errorf("qbf: duplicate universal variable x%d", v)
		}
		seen[v] = true
	}
	return nil
}

// Existential returns the variables of G not in X, sorted.
func (inst *Instance) Existential() []int {
	uni := make(map[int]bool, len(inst.Universal))
	for _, v := range inst.Universal {
		uni[v] = true
	}
	var out []int
	for v := 1; v <= inst.G.NumVars; v++ {
		if !uni[v] {
			out = append(out, v)
		}
	}
	return out
}

// String renders the instance as "∀{x1,x2} ∃rest (…)".
func (inst *Instance) String() string {
	vars := append([]int(nil), inst.Universal...)
	sort.Ints(vars)
	s := "forall{"
	for i, v := range vars {
		if i > 0 {
			s += ","
		}
		s += fmt.Sprintf("x%d", v)
	}
	return s + "} exists{rest} " + inst.G.String()
}

// Result is the outcome of deciding an instance.
type Result struct {
	// Holds reports whether ∀X ∃X' G is true.
	Holds bool
	// Counterexample, when Holds is false, is an assignment to the
	// universal variables under which G is unsatisfiable. Values of
	// non-universal variables in it are meaningless (false).
	Counterexample cnf.Assignment
	// OracleCalls counts SAT-solver invocations — the simulated NP-oracle
	// budget of the Π₂ᵖ machine.
	OracleCalls int
}

// Solve decides the instance by exhaustive ∀-loop with a DPLL oracle.
func Solve(inst *Instance) (Result, error) {
	return SolveWith(inst, sat.DPLL{})
}

// SolveWith decides the instance using the given SAT solver as the NP
// oracle.
func SolveWith(inst *Instance, oracle sat.Solver) (Result, error) {
	if err := inst.Validate(); err != nil {
		return Result{}, err
	}
	if len(inst.Universal) > MaxUniversal {
		return Result{}, fmt.Errorf("qbf: exhaustive loop limited to %d universal variables, instance has %d", MaxUniversal, len(inst.Universal))
	}
	res := Result{Holds: true}
	universal := append([]int(nil), inst.Universal...)
	sort.Ints(universal)
	total := uint64(1) << uint(len(universal))
	for mask := uint64(0); mask < total; mask++ {
		restricted := restrict(inst.G, universal, mask)
		res.OracleCalls++
		satisfiable, _, err := oracle.Solve(restricted)
		if err != nil {
			return Result{}, err
		}
		if !satisfiable {
			res.Holds = false
			cex := cnf.NewAssignment(inst.G.NumVars)
			for i, v := range universal {
				cex.Set(v, mask&(1<<uint(i)) != 0)
			}
			res.Counterexample = cex
			return res, nil
		}
		if total == 0 {
			break
		}
	}
	return res, nil
}

// restrict returns G with the universal variables pinned by mask: a copy
// of G extended with one unit clause per universal variable.
func restrict(g *cnf.Formula, universal []int, mask uint64) *cnf.Formula {
	out := g.Clone()
	for i, v := range universal {
		l := cnf.Lit(v)
		if mask&(1<<uint(i)) == 0 {
			l = l.Neg()
		}
		out.Clauses = append(out.Clauses, cnf.Clause{l})
	}
	return out
}
