package qbf

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"relquery/internal/cnf"
	"relquery/internal/sat"
)

// bruteQ decides ∀X ∃X' G by double exhaustive loop — the reference.
func bruteQ(inst *Instance) bool {
	uni := make(map[int]bool)
	for _, v := range inst.Universal {
		uni[v] = true
	}
	n := inst.G.NumVars
	a := cnf.NewAssignment(n)
	for umask := uint64(0); umask < 1<<uint(len(inst.Universal)); umask++ {
		found := false
		for emask := uint64(0); emask < 1<<uint(n-len(inst.Universal)); emask++ {
			ui, ei := 0, 0
			for v := 1; v <= n; v++ {
				if uni[v] {
					a.Set(v, umask&(1<<uint(ui)) != 0)
					ui++
				} else {
					a.Set(v, emask&(1<<uint(ei)) != 0)
					ei++
				}
			}
			if inst.G.Eval(a) {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

func TestValidate(t *testing.T) {
	g := cnf.PaperExample()
	if err := (&Instance{G: g, Universal: []int{1, 2}}).Validate(); err != nil {
		t.Errorf("valid instance rejected: %v", err)
	}
	if err := (&Instance{G: g, Universal: []int{0}}).Validate(); err == nil {
		t.Error("variable 0 accepted")
	}
	if err := (&Instance{G: g, Universal: []int{6}}).Validate(); err == nil {
		t.Error("out-of-range variable accepted")
	}
	if err := (&Instance{G: g, Universal: []int{1, 1}}).Validate(); err == nil {
		t.Error("duplicate variable accepted")
	}
	if err := (&Instance{}).Validate(); err == nil {
		t.Error("nil formula accepted")
	}
}

func TestExistential(t *testing.T) {
	inst := &Instance{G: cnf.PaperExample(), Universal: []int{2, 4}}
	got := inst.Existential()
	want := []int{1, 3, 5}
	if len(got) != len(want) {
		t.Fatalf("Existential = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Existential = %v, want %v", got, want)
		}
	}
}

func TestSolveFixedCases(t *testing.T) {
	cases := []struct {
		name string
		inst *Instance
		want bool
	}{
		{
			// G satisfiable for every x1: (x1 + x2 + x3) — set x2 true.
			"tautology-like",
			&Instance{G: cnf.MustNew(3, cnf.C(1, 2, 3)), Universal: []int{1}},
			true,
		},
		{
			// ∀x1∀x2∀x3 (x1+x2+x3): false (set all false).
			"all universal",
			&Instance{G: cnf.MustNew(3, cnf.C(1, 2, 3)), Universal: []int{1, 2, 3}},
			false,
		},
		{
			// ∀∅ ∃all: plain satisfiability.
			"purely existential sat",
			&Instance{G: cnf.PaperExample(), Universal: nil},
			true,
		},
		{
			// x2 must equal ~x1; exists for both x1 values.
			"equality gadget",
			&Instance{G: cnf.MustNew(2, cnf.C(1, 2), cnf.C(-1, -2)), Universal: []int{1}},
			true,
		},
		{
			// (x1+x2)(x1+~x2): forces x1 true; fails when x1 universal=false.
			"forced universal",
			&Instance{G: cnf.MustNew(2, cnf.C(1, 2), cnf.C(1, -2)), Universal: []int{1}},
			false,
		},
	}
	for _, tc := range cases {
		res, err := Solve(tc.inst)
		if err != nil {
			t.Errorf("%s: %v", tc.name, err)
			continue
		}
		if res.Holds != tc.want {
			t.Errorf("%s: Holds = %v, want %v", tc.name, res.Holds, tc.want)
		}
		if res.OracleCalls < 1 {
			t.Errorf("%s: OracleCalls = %d", tc.name, res.OracleCalls)
		}
		if !res.Holds {
			// Counterexample must make G unsatisfiable when pinned.
			restricted := restrict(tc.inst.G, tc.inst.Universal, 0)
			_ = restricted
			if res.Counterexample == nil {
				t.Errorf("%s: missing counterexample", tc.name)
			}
		}
	}
}

func TestCounterexampleIsReal(t *testing.T) {
	inst := &Instance{G: cnf.MustNew(2, cnf.C(1, 2), cnf.C(1, -2)), Universal: []int{1}}
	res, err := Solve(inst)
	if err != nil || res.Holds {
		t.Fatalf("res=%+v err=%v", res, err)
	}
	// Pin x1 to the counterexample value and check unsatisfiability.
	pinned := inst.G.Clone()
	l := cnf.Lit(1)
	if !res.Counterexample.Value(1) {
		l = l.Neg()
	}
	pinned.Clauses = append(pinned.Clauses, cnf.Clause{l})
	satisfiable, _, err := sat.Satisfiable(pinned)
	if err != nil || satisfiable {
		t.Fatalf("counterexample does not refute: sat=%v err=%v", satisfiable, err)
	}
}

func TestSolveGuards(t *testing.T) {
	big := &Instance{G: cnf.MustNew(31, cnf.C(1, 2, 3)), Universal: make([]int, 31)}
	for i := range big.Universal {
		big.Universal[i] = i + 1
	}
	if _, err := Solve(big); err == nil {
		t.Error("31 universal variables accepted")
	}
	bad := &Instance{G: cnf.PaperExample(), Universal: []int{9}}
	if _, err := Solve(bad); err == nil {
		t.Error("invalid instance accepted")
	}
}

func TestQuickSolveMatchesBrute(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(5)
		m := 3 + rng.Intn(8)
		g, err := cnf.Random3CNF(rng, n, m)
		if err != nil {
			return false
		}
		r := rng.Intn(n + 1)
		universal := rng.Perm(n)[:r]
		for i := range universal {
			universal[i]++
		}
		inst := &Instance{G: g, Universal: universal}
		res, err := Solve(inst)
		if err != nil {
			return false
		}
		return res.Holds == bruteQ(inst)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestCheckRestrictions(t *testing.T) {
	g := cnf.PaperExample() // clauses over {1,2,3},{2,3,4},{3,4,5}
	// X = {1,2,3} equals V1: violates both R1 (X ⊆ V1) and R2 (V1 ⊆ X).
	r1, r2, err := CheckRestrictions(&Instance{G: g, Universal: []int{1, 2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if r1 || r2 {
		t.Errorf("r1=%v r2=%v, want false false", r1, r2)
	}
	// X = {1,2}: contained in V1 (violates R1) but contains no Vj (R2 ok).
	r1, r2, err = CheckRestrictions(&Instance{G: g, Universal: []int{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if r1 || !r2 {
		t.Errorf("r1=%v r2=%v, want false true", r1, r2)
	}
	// X = {1,5}: not contained in any Vj, contains no Vj.
	r1, r2, err = CheckRestrictions(&Instance{G: g, Universal: []int{1, 5}})
	if err != nil {
		t.Fatal(err)
	}
	if !r1 || !r2 {
		t.Errorf("r1=%v r2=%v, want true true", r1, r2)
	}
	// Empty X: trivially contained in every Vj per set inclusion — but the
	// paper's X is nonempty in reductions; our convention: empty X is not
	// "contained in a clause" violation? It is: ∅ ⊆ V1. CheckRestrictions
	// treats containsX as false for empty X.
	r1, _, err = CheckRestrictions(&Instance{G: g, Universal: nil})
	if err != nil {
		t.Fatal(err)
	}
	if !r1 {
		t.Error("empty X reported as R1 violation")
	}
}

func TestEnforcePreservesValue(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(3)
		m := 3 + rng.Intn(5)
		g, err := cnf.Random3CNF(rng, n, m)
		if err != nil {
			return false
		}
		r := 1 + rng.Intn(2) // small X so the 2^X brute stays fast
		universal := rng.Perm(n)[:r]
		for i := range universal {
			universal[i]++
		}
		inst := &Instance{G: g, Universal: universal}
		want, err := Solve(inst)
		if err != nil {
			return false
		}
		enf, err := Enforce(inst)
		if err != nil {
			return false
		}
		if enf.Decided {
			return enf.Holds == want.Holds
		}
		r1, r2, err := CheckRestrictions(enf.Instance)
		if err != nil || !r1 || !r2 {
			return false
		}
		got, err := Solve(enf.Instance)
		if err != nil {
			return false
		}
		return got.Holds == want.Holds
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestEnforceTrivialFalse(t *testing.T) {
	// X contains all of V1: decided false.
	g := cnf.PaperExample()
	inst := &Instance{G: g, Universal: []int{1, 2, 3}}
	res, err := Enforce(inst)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Decided || res.Holds {
		t.Errorf("Enforce = %+v, want decided false", res)
	}
	// Cross-check with the solver.
	direct, err := Solve(inst)
	if err != nil {
		t.Fatal(err)
	}
	if direct.Holds {
		t.Error("direct solve disagrees with trivial-false")
	}
}

func TestString(t *testing.T) {
	inst := &Instance{G: cnf.MustNew(3, cnf.C(1, 2, 3)), Universal: []int{2, 1}}
	s := inst.String()
	if !strings.Contains(s, "forall{x1,x2}") {
		t.Errorf("String = %q", s)
	}
}

func TestSolveWithWatchedOracle(t *testing.T) {
	// The two SAT backends must induce identical ∀∃ answers.
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 20; trial++ {
		g, err := cnf.Random3CNF(rng, 3+rng.Intn(4), 3+rng.Intn(5))
		if err != nil {
			t.Fatal(err)
		}
		r := 1 + rng.Intn(3)
		universal := rng.Perm(g.NumVars)[:r]
		for i := range universal {
			universal[i]++
		}
		inst := &Instance{G: g, Universal: universal}
		viaDPLL, err := SolveWith(inst, sat.DPLL{})
		if err != nil {
			t.Fatal(err)
		}
		viaWatched, err := SolveWith(inst, sat.WatchedDPLL{})
		if err != nil {
			t.Fatal(err)
		}
		if viaDPLL.Holds != viaWatched.Holds {
			t.Errorf("oracles disagree on %v: dpll=%v watched=%v", inst, viaDPLL.Holds, viaWatched.Holds)
		}
	}
}
