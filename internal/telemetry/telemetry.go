// Package telemetry is the process-wide observability surface of the
// query engine: a stdlib-only HTTP server exposing the obs.Registry as
// Prometheus text-format metrics (/metrics), the runtime profiler
// (/debug/pprof/), and the registry's recent span trees as Chrome
// trace-event JSON (/debug/traces) loadable in Perfetto or
// chrome://tracing.
//
// The package closes the loop the paper opens: Cosmadakis 1983 proves
// intermediate results can blow up super-polynomially, internal/obs
// measures the blow-up per evaluation, internal/governor bounds it — and
// telemetry is where an operator watches all of it live across a
// workload: the peak-rows histogram, the observed-peak/AGM-bound ratio
// distribution, and the governor's violation counters by sentinel.
//
// telemetry sits above the engine: it imports internal/obs and
// internal/fault (never the reverse), so attaching a server never
// changes evaluation behavior. A process that starts no server pays
// nothing — the exporters only read registry snapshots on request.
package telemetry

import (
	"context"
	"errors"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"

	"relquery/internal/fault"
	"relquery/internal/obs"
)

// Server serves /metrics, /debug/pprof/ and /debug/traces for one
// registry. Create one with Start.
type Server struct {
	reg  *obs.Registry
	ln   net.Listener
	http *http.Server
	done chan error

	closeOnce sync.Once
	closeErr  error
}

// Start listens on addr (host:port; port 0 picks a free port) and serves
// the telemetry endpoints for reg in a background goroutine. The
// returned server reports its bound address via Addr; stop it with
// Close. A nil registry is allowed — the endpoints then export the
// zero snapshot, so a server can be started before any evaluator is
// wired to it.
func Start(addr string, reg *obs.Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{
		reg:  reg,
		ln:   ln,
		done: make(chan error, 1),
	}
	s.http = &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	go func() {
		err := s.http.Serve(ln)
		if errors.Is(err, http.ErrServerClosed) {
			err = nil
		}
		s.done <- err
	}()
	return s, nil
}

// Addr returns the server's bound address (useful with port 0).
func (s *Server) Addr() string {
	if s == nil || s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close shuts the server down gracefully and returns the serve loop's
// terminal error, if any. Safe on a nil server and idempotent — later
// calls return the first call's result.
func (s *Server) Close() error {
	if s == nil || s.http == nil {
		return nil
	}
	s.closeOnce.Do(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		shutdownErr := s.http.Shutdown(ctx)
		serveErr := <-s.done
		s.closeErr = shutdownErr
		if s.closeErr == nil {
			s.closeErr = serveErr
		}
	})
	return s.closeErr
}

// Handler returns the telemetry mux, for embedding the endpoints into an
// existing server instead of running a dedicated one. A nil server
// yields the nil-registry mux, which serves zero snapshots.
func (s *Server) Handler() http.Handler {
	if s == nil {
		return NewHandler(nil)
	}
	return NewHandler(s.reg)
}

// NewHandler returns the telemetry mux for a registry without starting a
// server: /metrics, /debug/traces, /debug/pprof/* and an index page.
// relqueryd mounts this under its own mux so the query routes and the
// observability surface share one port. A nil registry exports the zero
// snapshot.
func NewHandler(reg *obs.Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", MetricsHandler(reg))
	mux.HandleFunc("/debug/traces", TracesHandler(reg))
	// The pprof handlers are registered on our own mux rather than
	// importing the package for its DefaultServeMux side effect: the
	// telemetry port is opt-in, the default mux may be serving elsewhere.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", handleIndex)
	return mux
}

// MetricsHandler serves the registry snapshot (plus fault firing
// counters) in Prometheus text format, for embedding the endpoint alone.
func MetricsHandler(reg *obs.Registry) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WriteMetrics(w, reg.Snapshot(), fault.Firings())
	}
}

// TracesHandler serves the registry's retained span trees as Chrome
// trace-event JSON, for embedding the endpoint alone.
func TracesHandler(reg *obs.Registry) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = WriteChromeTrace(w, reg.Traces())
	}
}

func handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_, _ = w.Write([]byte(`<html><body><h1>relquery telemetry</h1><ul>
<li><a href="/metrics">/metrics</a> — Prometheus text format</li>
<li><a href="/debug/traces">/debug/traces</a> — Chrome trace-event JSON (load in Perfetto)</li>
<li><a href="/debug/pprof/">/debug/pprof/</a> — runtime profiles</li>
</ul></body></html>
`))
}
