package telemetry_test

import (
	"net/http"
	"net/http/httptest"
	"testing"

	"relquery/internal/telemetry"
)

// TestNilServerNoOp: a nil *Server is "telemetry off" — address empty,
// close trivial, and the embeddable handler still serves the zero
// snapshot instead of panicking whatever route is hit.
func TestNilServerNoOp(t *testing.T) {
	var s *telemetry.Server
	if got := s.Addr(); got != "" {
		t.Errorf("nil server Addr = %q, want empty", got)
	}
	if err := s.Close(); err != nil {
		t.Errorf("nil server Close = %v, want nil", err)
	}

	h := s.Handler()
	if h == nil {
		t.Fatal("nil server Handler = nil, want the nil-registry mux")
	}
	for _, path := range []string{"/metrics", "/debug/traces", "/"} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		if rec.Code != http.StatusOK {
			t.Errorf("nil server Handler GET %s = %d, want 200", path, rec.Code)
		}
	}
}
