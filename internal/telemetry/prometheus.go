package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"

	"relquery/internal/fault"
	"relquery/internal/obs"
)

// counterSeries maps a MetricsSnapshot field to a Prometheus series.
// MaxIntermediate is deliberately absent: it is a max-fold, not a
// counter, and the peak_intermediate_rows histogram carries the
// distribution instead.
type counterSeries struct {
	name string
	help string
	get  func(m obs.MetricsSnapshot) int64
}

var counters = []counterSeries{
	{obs.SeriesJoins, "Join node evaluations.", func(m obs.MetricsSnapshot) int64 { return m.Joins }},
	{obs.SeriesIntermediateTuples, "Tuples materialized in intermediate relations.", func(m obs.MetricsSnapshot) int64 { return m.IntermediateTuples }},
	{obs.SeriesTuplesBuilt, "Tuples inserted into join build sides.", func(m obs.MetricsSnapshot) int64 { return m.TuplesBuilt }},
	{obs.SeriesTuplesProbed, "Tuples driven through join probe sides.", func(m obs.MetricsSnapshot) int64 { return m.TuplesProbed }},
	{obs.SeriesTuplesEmitted, "Tuples emitted by join operators.", func(m obs.MetricsSnapshot) int64 { return m.TuplesEmitted }},
	{obs.SeriesPartitionedJoins, "Parallel partitioned hash joins.", func(m obs.MetricsSnapshot) int64 { return m.PartitionedJoins }},
	{obs.SeriesPartitions, "Partitions created by parallel joins.", func(m obs.MetricsSnapshot) int64 { return m.Partitions }},
	{obs.SeriesBroadcastJoins, "Parallel broadcast joins.", func(m obs.MetricsSnapshot) int64 { return m.BroadcastJoins }},
	{obs.SeriesSequentialFallbacks, "Parallel joins that fell back to sequential.", func(m obs.MetricsSnapshot) int64 { return m.SequentialFallbacks }},
	{obs.SeriesWCOJJoins, "Worst-case-optimal generic joins.", func(m obs.MetricsSnapshot) int64 { return m.WCOJJoins }},
	{obs.SeriesWCOJCandidates, "Candidate values enumerated by generic joins.", func(m obs.MetricsSnapshot) int64 { return m.WCOJCandidates }},
	{obs.SeriesWCOJIntersections, "Attribute intersections performed by generic joins.", func(m obs.MetricsSnapshot) int64 { return m.WCOJIntersections }},
	{obs.SeriesYannakakisJoins, "Acyclic joins evaluated via Yannakakis.", func(m obs.MetricsSnapshot) int64 { return m.YannakakisJoins }},
	{obs.SeriesSemijoins, "Semijoin passes (Yannakakis sweeps and prefilters).", func(m obs.MetricsSnapshot) int64 { return m.Semijoins }},
	{obs.SeriesSemijoinRows, "Rows removed by semijoin passes.", func(m obs.MetricsSnapshot) int64 { return m.SemijoinRows }},
	{obs.SeriesDegradedEvals, "Evaluations served by a graceful-degradation retry.", func(m obs.MetricsSnapshot) int64 { return m.DegradedEvals }},
	{obs.SeriesCacheHits, "Subexpression cache hits.", func(m obs.MetricsSnapshot) int64 { return m.CacheHits }},
	{obs.SeriesCacheMisses, "Subexpression cache misses.", func(m obs.MetricsSnapshot) int64 { return m.CacheMisses }},
	{obs.SeriesCacheInvalidations, "Subexpression cache entries invalidated.", func(m obs.MetricsSnapshot) int64 { return m.CacheInvalidations }},
}

// WriteMetrics writes the registry snapshot and fault firing counters in
// the Prometheus text exposition format (version 0.0.4). Every governor
// sentinel and every fault injection point is always emitted, at zero if
// never tripped, so dashboards and the CI smoke test can rely on the
// series existing.
func WriteMetrics(w io.Writer, snap obs.RegistrySnapshot, firings map[fault.Point]int64) error {
	bw := bufio.NewWriter(w)

	writeHeader(bw, obs.SeriesEvals, "counter", "Evaluations observed by the registry.")
	fmt.Fprintf(bw, "%s %d\n", obs.SeriesEvals, snap.Evals)

	for _, c := range counters {
		writeHeader(bw, c.name, "counter", c.help)
		fmt.Fprintf(bw, "%s %d\n", c.name, c.get(snap.Metrics))
	}

	writeHeader(bw, obs.SeriesGovernorViolations, "counter",
		"Governance violations by sentinel (one per tripped evaluation).")
	for _, vc := range snap.Metrics.ViolationCounts() {
		fmt.Fprintf(bw, "%s{sentinel=%q} %d\n", obs.SeriesGovernorViolations, vc.Kind, vc.Count)
	}

	writeHeader(bw, obs.SeriesFaultFirings, "counter",
		"Fault-injection crossings delivered to an injector, by point.")
	for _, p := range fault.Points() {
		fmt.Fprintf(bw, "%s{point=%q} %d\n", obs.SeriesFaultFirings, string(p), firings[p])
	}

	writeHeader(bw, obs.SeriesPeakGauge, "gauge",
		"Largest intermediate cardinality observed by any evaluation.")
	fmt.Fprintf(bw, "%s %d\n", obs.SeriesPeakGauge, snap.Metrics.MaxIntermediate)

	writeHistogram(bw, obs.SeriesLatencyHist,
		"Evaluation wall time, in seconds.", snap.Latency)
	writeHistogram(bw, obs.SeriesPeakRowsHist,
		"Per-evaluation largest intermediate cardinality.", snap.PeakRows)
	writeHistogram(bw, obs.SeriesAGMRatioHist,
		"Per-evaluation worst observed-peak / AGM-bound ratio.", snap.AGMRatio)

	return bw.Flush()
}

func writeHeader(w io.Writer, name, typ, help string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// writeHistogram renders one HistogramSnapshot as a Prometheus histogram:
// cumulative _bucket{le} series over the non-empty buckets, the mandatory
// le="+Inf" bucket, then _sum and _count.
func writeHistogram(w io.Writer, name, help string, h obs.HistogramSnapshot) {
	writeHeader(w, name, "histogram", help)
	cum := int64(0)
	for _, b := range h.Buckets {
		cum += b.Count
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, formatFloat(b.UpperBound), cum)
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, h.Count)
	fmt.Fprintf(w, "%s_sum %s\n", name, formatFloat(h.Sum))
	fmt.Fprintf(w, "%s_count %d\n", name, h.Count)
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// ParseMetrics reads Prometheus text-format exposition and returns the
// sample values keyed by series name including its label set, exactly as
// written (e.g. `relquery_governor_violations_total{sentinel="deadline"}`).
// It understands the subset this package emits — comment lines, blank
// lines, and `name[{labels}] value` samples — which is all the CI smoke
// test needs to assert the endpoint's output is well-formed.
func ParseMetrics(r io.Reader) (map[string]float64, error) {
	out := map[string]float64{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		// The value is the last space-separated field; the series (name
		// plus optional label set, which may itself contain spaces inside
		// quoted label values) is everything before it.
		idx := strings.LastIndexByte(line, ' ')
		if idx <= 0 {
			return nil, fmt.Errorf("telemetry: metrics line %d: no value: %q", lineNo, line)
		}
		series, valStr := strings.TrimSpace(line[:idx]), line[idx+1:]
		if err := checkSeries(series); err != nil {
			return nil, fmt.Errorf("telemetry: metrics line %d: %w", lineNo, err)
		}
		v, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			return nil, fmt.Errorf("telemetry: metrics line %d: bad value %q: %w", lineNo, valStr, err)
		}
		if math.IsNaN(v) {
			return nil, fmt.Errorf("telemetry: metrics line %d: NaN sample", lineNo)
		}
		out[series] = v
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("telemetry: reading metrics: %w", err)
	}
	return out, nil
}

// checkSeries validates `name` or `name{label="value",...}`.
func checkSeries(s string) error {
	name := s
	if i := strings.IndexByte(s, '{'); i >= 0 {
		name = s[:i]
		if !strings.HasSuffix(s, "}") {
			return fmt.Errorf("unterminated label set in %q", s)
		}
	}
	if name == "" {
		return fmt.Errorf("empty metric name in %q", s)
	}
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			return fmt.Errorf("invalid metric name %q", name)
		}
	}
	return nil
}

// MetricNames returns the sorted series names of a ParseMetrics result,
// for diagnostics in failing tests.
func MetricNames(m map[string]float64) []string {
	names := make([]string, 0, len(m))
	for k := range m {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}
