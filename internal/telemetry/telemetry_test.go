package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"relquery/internal/fault"
	"relquery/internal/obs"
)

// testRegistry builds a registry with two observed evaluations: one
// clean traced join, one collector-less, plus governor violations.
func testRegistry() *obs.Registry {
	reg := obs.NewRegistry()
	tr := &obs.Trace{
		Roots: []*obs.Span{{
			Op: obs.OpProject, Label: "pi[A C]", OutputRows: 2,
			StartNanos: 1_000_000, WallNanos: 3_000_000,
			Children: []*obs.Span{{
				Op: obs.OpJoin, Label: "* (natural join, 2 inputs)",
				OutputRows: 5, StartNanos: 1_200_000, WallNanos: 2_500_000,
				Algorithm: "hash", AGMBound: 12, MaxIntermediate: 6,
				InputRows: []int{3, 4},
				Children: []*obs.Span{
					{Op: obs.OpScan, Label: "L", OutputRows: 3, StartNanos: 1_300_000, WallNanos: 100_000},
					{Op: obs.OpScan, Label: "R", OutputRows: 4, Cache: obs.CacheHit},
				},
			}},
		}},
		Metrics: obs.MetricsSnapshot{
			Joins: 1, MaxIntermediate: 6, IntermediateTuples: 6,
			ViolationsRowBudget: 1, ViolationsDeadline: 2,
		},
	}
	reg.Observe(tr, 3*time.Millisecond)
	reg.Observe(nil, time.Millisecond)
	return reg
}

func TestWriteMetricsParses(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMetrics(&buf, testRegistry().Snapshot(), map[fault.Point]int64{fault.JoinBatch: 7}); err != nil {
		t.Fatalf("WriteMetrics: %v", err)
	}
	got, err := ParseMetrics(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("own output does not parse: %v\n%s", err, buf.String())
	}

	if got["relquery_evals_total"] != 2 {
		t.Errorf("evals_total = %g, want 2", got["relquery_evals_total"])
	}
	if got["relquery_joins_total"] != 1 {
		t.Errorf("joins_total = %g, want 1", got["relquery_joins_total"])
	}
	// Every sentinel series must exist, including never-tripped ones at 0.
	for _, kind := range obs.ViolationKinds() {
		series := fmt.Sprintf("relquery_governor_violations_total{sentinel=%q}", kind)
		v, ok := got[series]
		if !ok {
			t.Fatalf("missing series %s\nhave: %v", series, MetricNames(got))
		}
		want := map[string]float64{"row_budget": 1, "deadline": 2}[kind]
		if v != want {
			t.Errorf("%s = %g, want %g", series, v, want)
		}
	}
	// Same for fault points.
	for _, p := range fault.Points() {
		series := fmt.Sprintf("relquery_fault_firings_total{point=%q}", string(p))
		v, ok := got[series]
		if !ok {
			t.Fatalf("missing series %s", series)
		}
		want := 0.0
		if p == fault.JoinBatch {
			want = 7
		}
		if v != want {
			t.Errorf("%s = %g, want %g", series, v, want)
		}
	}
	// Histogram invariants: +Inf bucket equals _count, buckets cumulative.
	if got[`relquery_eval_latency_seconds_bucket{le="+Inf"}`] != 2 {
		t.Errorf("latency +Inf bucket = %g, want 2", got[`relquery_eval_latency_seconds_bucket{le="+Inf"}`])
	}
	if got["relquery_eval_latency_seconds_count"] != 2 {
		t.Errorf("latency _count = %g, want 2", got["relquery_eval_latency_seconds_count"])
	}
	if sum := got["relquery_eval_latency_seconds_sum"]; sum < 0.003 || sum > 0.005 {
		t.Errorf("latency _sum = %g, want 0.004", sum)
	}
	prev := 0.0
	for _, line := range strings.Split(buf.String(), "\n") {
		if strings.HasPrefix(line, "relquery_eval_latency_seconds_bucket") {
			var v float64
			fmt.Sscanf(line[strings.LastIndexByte(line, ' ')+1:], "%g", &v)
			if v < prev {
				t.Fatalf("bucket counts not cumulative: %q after %g", line, prev)
			}
			prev = v
		}
	}
	if got["relquery_peak_intermediate_rows_count"] != 1 {
		t.Errorf("peak rows _count = %g, want 1 (nil trace contributes none)", got["relquery_peak_intermediate_rows_count"])
	}
	// t1's worst ratio is 6/12.
	if got["relquery_peak_agm_ratio_sum"] != 0.5 {
		t.Errorf("agm ratio _sum = %g, want 0.5", got["relquery_peak_agm_ratio_sum"])
	}
	if got["relquery_peak_intermediate_rows_gauge"] != 6 {
		t.Errorf("peak gauge = %g, want 6", got["relquery_peak_intermediate_rows_gauge"])
	}
}

func TestWriteMetricsZeroSnapshot(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMetrics(&buf, obs.RegistrySnapshot{}, nil); err != nil {
		t.Fatalf("WriteMetrics(zero): %v", err)
	}
	got, err := ParseMetrics(&buf)
	if err != nil {
		t.Fatalf("zero snapshot output does not parse: %v", err)
	}
	if got["relquery_evals_total"] != 0 {
		t.Errorf("evals_total = %g, want 0", got["relquery_evals_total"])
	}
	if _, ok := got[`relquery_governor_violations_total{sentinel="admission"}`]; !ok {
		t.Error("zero snapshot omits violation series; CI smoke depends on them")
	}
}

func TestParseMetricsRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"just_a_name\n",
		"1name 5\n",
		`name{unterminated="x" 5` + "\n",
		"name notanumber\n",
		"name NaN\n",
	} {
		if _, err := ParseMetrics(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseMetrics(%q) accepted malformed input", bad)
		}
	}
	// The histogram's le="+Inf" label and spaces inside label values are fine.
	ok := "m_bucket{le=\"+Inf\"} 3\nm{l=\"a b\"} 1\n"
	m, err := ParseMetrics(strings.NewReader(ok))
	if err != nil {
		t.Fatalf("ParseMetrics(valid) = %v", err)
	}
	if m[`m_bucket{le="+Inf"}`] != 3 || m[`m{l="a b"}`] != 1 {
		t.Errorf("parsed %v", m)
	}
}

// TestChromeTraceGolden pins the structural contract of the Chrome
// export: valid JSON, every event a complete "X" (or "M" metadata)
// event, per-evaluation pids, depth as tid, child events inside their
// parent's track layout.
func TestChromeTraceGolden(t *testing.T) {
	reg := testRegistry()
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, reg.Traces()); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var decoded struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v\n%s", err, buf.String())
	}
	if decoded.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", decoded.DisplayTimeUnit)
	}
	// One metadata event + 4 spans.
	var meta, complete int
	for _, ev := range decoded.TraceEvents {
		switch ev.Ph {
		case "M":
			meta++
			if ev.Name != "process_name" {
				t.Errorf("metadata event name = %q", ev.Name)
			}
		case "X":
			complete++
			if ev.Pid < 1 || ev.Tid < 1 {
				t.Errorf("event %q has pid=%d tid=%d, want >= 1", ev.Name, ev.Pid, ev.Tid)
			}
			if ev.Ts < 0 || ev.Dur < 0 {
				t.Errorf("event %q has negative ts/dur: %g/%g", ev.Name, ev.Ts, ev.Dur)
			}
		default:
			t.Errorf("unexpected phase %q (only X/M events are emitted)", ev.Ph)
		}
	}
	if meta != 1 || complete != 4 {
		t.Fatalf("got %d metadata + %d complete events, want 1 + 4\n%s", meta, complete, buf.String())
	}
	// The root starts the normalized timeline; the join sits inside it on
	// the next track.
	byName := map[string]int{}
	for i, ev := range decoded.TraceEvents {
		byName[ev.Name] = i
	}
	root := decoded.TraceEvents[byName["project pi[A C]"]]
	join := decoded.TraceEvents[byName["join * (natural join, 2 inputs)"]]
	hit := decoded.TraceEvents[byName["scan R"]]
	if root.Ts != 0 {
		t.Errorf("root ts = %g, want 0 (earliest start normalizes to zero)", root.Ts)
	}
	if root.Dur != 3000 {
		t.Errorf("root dur = %g µs, want 3000", root.Dur)
	}
	if join.Tid != root.Tid+1 {
		t.Errorf("join tid = %d, want root+1 = %d", join.Tid, root.Tid+1)
	}
	if join.Ts < root.Ts || join.Ts+join.Dur > root.Ts+root.Dur {
		t.Errorf("join [%g, %g] outside root [%g, %g]", join.Ts, join.Ts+join.Dur, root.Ts, root.Ts+root.Dur)
	}
	if join.Args["algorithm"] != "hash" || join.Args["agm_bound"] != 12.0 {
		t.Errorf("join args = %v", join.Args)
	}
	// The cache-hit scan never began: it gets a synthetic slot after its
	// earlier sibling, still inside the join.
	if hit.Args["cache"] != "hit" {
		t.Errorf("cache-hit scan args = %v", hit.Args)
	}
	if hit.Ts < join.Ts {
		t.Errorf("synthetic ts %g before parent %g", hit.Ts, join.Ts)
	}
}

func TestChromeTraceEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, nil); err != nil {
		t.Fatalf("WriteChromeTrace(nil): %v", err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("empty trace not valid JSON: %v", err)
	}
	if evs, ok := decoded["traceEvents"].([]any); !ok || len(evs) != 0 {
		t.Errorf("traceEvents = %v, want empty array (not null — Perfetto rejects it)", decoded["traceEvents"])
	}
	if err := WriteChromeTrace(&buf, []*obs.Trace{nil, {}}); err != nil {
		t.Fatalf("WriteChromeTrace with nil entry: %v", err)
	}
}

func TestServerEndpoints(t *testing.T) {
	reg := testRegistry()
	srv, err := Start("127.0.0.1:0", reg)
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	get := func(path string) (string, string) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: read: %v", path, err)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	body, ctype := get("/metrics")
	if !strings.HasPrefix(ctype, "text/plain") {
		t.Errorf("/metrics content type = %q", ctype)
	}
	m, err := ParseMetrics(strings.NewReader(body))
	if err != nil {
		t.Fatalf("/metrics does not parse: %v", err)
	}
	if m["relquery_evals_total"] != 2 {
		t.Errorf("served evals_total = %g, want 2", m["relquery_evals_total"])
	}

	body, ctype = get("/debug/traces")
	if !strings.HasPrefix(ctype, "application/json") {
		t.Errorf("/debug/traces content type = %q", ctype)
	}
	var chrome map[string]any
	if err := json.Unmarshal([]byte(body), &chrome); err != nil {
		t.Fatalf("/debug/traces not valid JSON: %v", err)
	}

	if body, _ = get("/debug/pprof/"); !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ index looks wrong: %.100s", body)
	}
	if body, _ = get("/"); !strings.Contains(body, "/metrics") {
		t.Errorf("index page missing endpoint links: %.100s", body)
	}

	resp, err := http.Get(base + "/no-such-page")
	if err != nil {
		t.Fatalf("GET 404 path: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown path status = %d, want 404", resp.StatusCode)
	}

	if err := srv.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
}

// TestServerNilRegistry: a server over a nil registry serves zero
// snapshots rather than panicking — it can start before the evaluator.
func TestServerNilRegistry(t *testing.T) {
	srv, err := Start("127.0.0.1:0", nil)
	if err != nil {
		t.Fatalf("Start(nil registry): %v", err)
	}
	defer srv.Close()
	for _, path := range []string{"/metrics", "/debug/traces"} {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s with nil registry: status %d", path, resp.StatusCode)
		}
	}

	var nilSrv *Server
	if nilSrv.Addr() != "" {
		t.Error("nil Server.Addr() != \"\"")
	}
	if err := nilSrv.Close(); err != nil {
		t.Errorf("nil Server.Close() = %v", err)
	}
}

// TestMetricsConcurrent scrapes while evaluations are being observed —
// the handler path must be race-free (run under -race in CI).
func TestMetricsConcurrent(t *testing.T) {
	reg := obs.NewRegistry()
	srv, err := Start("127.0.0.1:0", reg)
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer srv.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				reg.Observe(&obs.Trace{Metrics: obs.MetricsSnapshot{Joins: 1}}, time.Duration(i))
			}
		}
	}()
	for i := 0; i < 5; i++ {
		resp, err := http.Get("http://" + srv.Addr() + "/metrics")
		if err != nil {
			t.Fatalf("scrape %d: %v", i, err)
		}
		if _, err := ParseMetrics(resp.Body); err != nil {
			t.Errorf("scrape %d does not parse: %v", i, err)
		}
		resp.Body.Close()
	}
	close(stop)
	wg.Wait()
}
