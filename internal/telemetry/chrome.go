package telemetry

import (
	"encoding/json"
	"fmt"
	"io"

	"relquery/internal/obs"
)

// chromeEvent is one entry of the Chrome trace-event format's
// traceEvents array (the JSON Object Format, as consumed by Perfetto and
// chrome://tracing). Only the event kinds this exporter emits are
// modeled: "X" complete events and "M" metadata.
type chromeEvent struct {
	Name string `json:"name"`
	// Ph is the event phase: "X" (complete) or "M" (metadata).
	Ph string `json:"ph"`
	// Ts is the start timestamp in microseconds.
	Ts float64 `json:"ts"`
	// Dur is the duration in microseconds (complete events only).
	Dur float64 `json:"dur,omitempty"`
	Pid int     `json:"pid"`
	Tid int     `json:"tid"`
	// Args carries the span's observability fields for the UI's detail
	// pane.
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace exports span trees as Chrome trace-event JSON. Each
// evaluation becomes one "process" (pid = its index, newest last) named
// after its root operator; each span becomes an "X" complete event whose
// track (tid) is its tree depth, so the expression tree reads as a flame
// graph per evaluation.
//
// Spans recorded by Begin carry absolute start times, which are
// normalized against the earliest start in the batch so evaluations sit
// on one shared timeline. Spans that never began — cache hits, or traces
// serialized before StartNanos existed — are laid out synthetically:
// start of parent, shifted past earlier siblings' durations.
func WriteChromeTrace(w io.Writer, traces []*obs.Trace) error {
	out := chromeTrace{TraceEvents: []chromeEvent{}, DisplayTimeUnit: "ms"}

	base := int64(0)
	for _, t := range traces {
		if t == nil {
			continue
		}
		for _, root := range t.Roots {
			walkSpans(root, func(sp *obs.Span) {
				if sp.StartNanos > 0 && (base == 0 || sp.StartNanos < base) {
					base = sp.StartNanos
				}
			})
		}
	}

	for i, t := range traces {
		if t == nil {
			continue
		}
		pid := i + 1
		name := fmt.Sprintf("eval %d", pid)
		if root := t.Root(); root != nil {
			name = fmt.Sprintf("eval %d: %s %s", pid, root.Op, root.Label)
		}
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "process_name", Ph: "M", Pid: pid,
			Args: map[string]any{"name": name},
		})
		for _, root := range t.Roots {
			emitSpan(&out.TraceEvents, root, pid, 1, base, 0)
		}
	}

	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// emitSpan appends sp and its subtree as complete events. fallbackTs is
// the synthetic start (µs) used when the span has no recorded absolute
// start.
func emitSpan(events *[]chromeEvent, sp *obs.Span, pid, depth int, base int64, fallbackTs float64) {
	if sp == nil {
		return
	}
	ts := fallbackTs
	if sp.StartNanos > 0 {
		ts = float64(sp.StartNanos-base) / 1e3
	}
	ev := chromeEvent{
		Name: spanName(sp),
		Ph:   "X",
		Ts:   ts,
		Dur:  float64(sp.WallNanos) / 1e3,
		Pid:  pid,
		Tid:  depth,
		Args: spanArgs(sp),
	}
	*events = append(*events, ev)
	childTs := ts
	for _, c := range sp.Children {
		emitSpan(events, c, pid, depth+1, base, childTs)
		childTs += float64(c.WallNanos) / 1e3
	}
}

func spanName(sp *obs.Span) string {
	if sp.Label == "" {
		return sp.Op
	}
	return sp.Op + " " + sp.Label
}

// spanArgs projects a span's observability fields into the event's args,
// omitting zero values so the detail pane stays readable.
func spanArgs(sp *obs.Span) map[string]any {
	args := map[string]any{obs.FieldOutputRows: sp.OutputRows}
	if sp.SchemeWidth > 0 {
		args[obs.FieldSchemeWidth] = sp.SchemeWidth
	}
	if len(sp.InputRows) > 0 {
		args[obs.FieldInputRows] = sp.InputRows
	}
	if sp.Algorithm != "" {
		args[obs.FieldAlgorithm] = sp.Algorithm
	}
	if sp.Workers > 0 {
		args[obs.FieldWorkers] = sp.Workers
	}
	if sp.Cache != "" {
		args[obs.FieldCache] = sp.Cache
	}
	if sp.AGMBound > 0 {
		args[obs.FieldAGMBound] = sp.AGMBound
	}
	if sp.MaxIntermediate > 0 {
		args[obs.FieldMaxIntermediate] = sp.MaxIntermediate
	}
	if sp.Candidates > 0 {
		args[obs.FieldCandidates] = sp.Candidates
	}
	if sp.Intersections > 0 {
		args[obs.FieldIntersections] = sp.Intersections
	}
	if sp.Structure != "" {
		args[obs.FieldStructure] = sp.Structure
	}
	if sp.Semijoins > 0 {
		args[obs.FieldSemijoins] = sp.Semijoins
	}
	if sp.ReducedRows > 0 {
		args[obs.FieldReducedRows] = sp.ReducedRows
	}
	if sp.Degraded {
		args[obs.FieldDegraded] = true
	}
	if sp.Err != "" {
		args[obs.FieldError] = sp.Err
	}
	return args
}

func walkSpans(sp *obs.Span, f func(*obs.Span)) {
	if sp == nil {
		return
	}
	f(sp)
	for _, c := range sp.Children {
		walkSpans(c, f)
	}
}
