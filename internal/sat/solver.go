// Package sat implements satisfiability machinery for the logic side of
// the paper's reductions: a brute-force reference solver, a DPLL solver
// with unit propagation and pure-literal elimination, exact model counting
// (#3SAT, for Theorem 3) with connected-component decomposition, and model
// enumeration (used to build the paper's R̃_G).
//
// Everything here is exhaustive search with pruning — the honest
// realization of the nondeterministic machines the paper's membership
// proofs assume.
package sat

import (
	"fmt"

	"relquery/internal/cnf"
)

// MaxBruteVars bounds exhaustive enumeration: counts and masks are held in
// int64/uint64, so formulas must have at most 62 variables.
const MaxBruteVars = 62

// Solver decides satisfiability of a CNF formula.
type Solver interface {
	// Name identifies the solver in experiment tables.
	Name() string
	// Solve reports whether f is satisfiable and, if so, a witnessing
	// model over all f.NumVars variables.
	Solve(f *cnf.Formula) (sat bool, model cnf.Assignment, err error)
}

// BruteForce tries all 2^n assignments in increasing bit order. It is the
// reference implementation the DPLL solver is tested against.
type BruteForce struct{}

// Name implements Solver.
func (BruteForce) Name() string { return "brute" }

// Solve implements Solver.
func (BruteForce) Solve(f *cnf.Formula) (bool, cnf.Assignment, error) {
	if f.NumVars > MaxBruteVars {
		return false, nil, fmt.Errorf("sat: brute force limited to %d variables, formula has %d", MaxBruteVars, f.NumVars)
	}
	a := cnf.NewAssignment(f.NumVars)
	for mask := uint64(0); ; mask++ {
		a.FromBits(mask)
		if f.Eval(a) {
			return true, a.Clone(), nil
		}
		if f.NumVars == 0 || mask == (uint64(1)<<uint(f.NumVars))-1 {
			break
		}
	}
	return false, nil, nil
}

// Satisfiable decides f with the default solver (DPLL).
func Satisfiable(f *cnf.Formula) (bool, cnf.Assignment, error) {
	return DPLL{}.Solve(f)
}

// value is a three-valued variable state used by the search procedures.
type value int8

const (
	unassigned value = iota
	vFalse
	vTrue
)

func boolToValue(b bool) value {
	if b {
		return vTrue
	}
	return vFalse
}

// state is a mutable solving context shared by DPLL search, counting and
// enumeration.
type state struct {
	clauses []cnf.Clause
	assign  []value // 1-indexed: assign[v] for variable v
	numVars int

	// gate, when non-nil, is polled once per search node; err latches the
	// context error that aborted the search (the recursion unwinds through
	// boolean returns, so the error travels out of band).
	gate *ctxGate
	err  error
}

func newState(f *cnf.Formula) *state {
	s := &state{
		clauses: f.Clauses,
		assign:  make([]value, f.NumVars+1),
		numVars: f.NumVars,
	}
	return s
}

// clauseStatus classifies a clause under the current partial assignment.
type clauseStatus int

const (
	csSatisfied clauseStatus = iota
	csFalsified
	csUnit
	csOpen
)

// status returns the clause's state and, when csUnit, the forced literal.
func (s *state) status(c cnf.Clause) (clauseStatus, cnf.Lit) {
	var unit cnf.Lit
	unassignedCount := 0
	for _, l := range c {
		switch s.assign[l.Var()] {
		case unassigned:
			unassignedCount++
			unit = l
		default:
			if l.Sat(s.assign[l.Var()] == vTrue) {
				return csSatisfied, 0
			}
		}
	}
	switch unassignedCount {
	case 0:
		return csFalsified, 0
	case 1:
		return csUnit, unit
	default:
		return csOpen, 0
	}
}

// propagate runs unit propagation to fixpoint. It returns false on
// conflict, together with the list of variables it assigned (for
// backtracking).
func (s *state) propagate() (ok bool, trail []int) {
	for {
		progressed := false
		for _, c := range s.clauses {
			st, unit := s.status(c)
			switch st {
			case csFalsified:
				return false, trail
			case csUnit:
				s.assign[unit.Var()] = boolToValue(unit.Pos())
				trail = append(trail, unit.Var())
				progressed = true
			}
		}
		if !progressed {
			return true, trail
		}
	}
}

// undo reverts the assignments recorded in trail.
func (s *state) undo(trail []int) {
	for _, v := range trail {
		s.assign[v] = unassigned
	}
}

// allSatisfied reports whether every clause is satisfied outright.
func (s *state) allSatisfied() bool {
	for _, c := range s.clauses {
		if st, _ := s.status(c); st != csSatisfied {
			return false
		}
	}
	return true
}

// pickBranchVar chooses the unassigned variable occurring most often in
// non-satisfied clauses, preferring variables in the shortest open clause.
// Returns 0 when every variable is assigned or no open clause remains.
func (s *state) pickBranchVar() int {
	counts := make(map[int]int)
	bestLen := -1
	var shortClause cnf.Clause
	for _, c := range s.clauses {
		st, _ := s.status(c)
		if st == csSatisfied {
			continue
		}
		open := 0
		for _, l := range c {
			if s.assign[l.Var()] == unassigned {
				counts[l.Var()]++
				open++
			}
		}
		if open > 0 && (bestLen == -1 || open < bestLen) {
			bestLen = open
			shortClause = c
		}
	}
	if shortClause == nil {
		return 0
	}
	best, bestCount := 0, -1
	for _, l := range shortClause {
		v := l.Var()
		if s.assign[v] == unassigned && counts[v] > bestCount {
			best, bestCount = v, counts[v]
		}
	}
	return best
}

// model extracts a complete assignment, defaulting unassigned variables to
// false.
func (s *state) model() cnf.Assignment {
	a := cnf.NewAssignment(s.numVars)
	for v := 1; v <= s.numVars; v++ {
		a.Set(v, s.assign[v] == vTrue)
	}
	return a
}
