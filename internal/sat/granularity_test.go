package sat

import (
	"context"
	"errors"
	"testing"

	"relquery/internal/governor"
)

// Compile-time ratchet: the SAT poll batch must stay within 4× the tuple
// engines' governor granularity (governor.CheckEvery). SAT nodes are
// cheaper than tuples, so a wider batch is fine — but if someone widens
// CheckNodes past this bound, cancellation latency silently diverges
// from the rest of the module and this constant goes negative, which a
// uint conversion refuses to compile.
const _ = uint(4*governor.CheckEvery - CheckNodes)

// countingContext wraps a cancelable context and counts Err polls, so a
// test can observe *when* a solver looks at its context, not just that
// it eventually aborts. After failAfter polls (0 = never) it cancels the
// underlying context, simulating mid-search expiry at a known step.
type countingContext struct {
	context.Context
	cancel    context.CancelFunc
	polls     int
	failAfter int
}

func newCountingContext(failAfter int) *countingContext {
	ctx, cancel := context.WithCancel(context.Background())
	return &countingContext{Context: ctx, cancel: cancel, failAfter: failAfter}
}

func (c *countingContext) Err() error {
	c.polls++
	if c.failAfter > 0 && c.polls >= c.failAfter {
		c.cancel()
	}
	return c.Context.Err()
}

// TestSolversPollPeriodically runs each context-aware solver to
// completion on an instance that outlasts several poll batches and
// asserts the context was polled more than once mid-search. This is the
// dynamic face of the govloop invariant: the inner search loop really
// does reach a poll every CheckNodes steps, rather than checking only
// on entry and exit.
func TestSolversPollPeriodically(t *testing.T) {
	for name, s := range contextSolvers() {
		t.Run(name, func(t *testing.T) {
			f := hardUnsatFormula(t, name)
			ctx := newCountingContext(0)
			defer ctx.cancel()
			sat, _, err := s.SolveContext(ctx, f)
			if err != nil {
				t.Fatal(err)
			}
			if sat {
				t.Fatal("pigeonhole instance reported satisfiable")
			}
			if ctx.polls < 2 {
				t.Fatalf("solver polled the context %d times over a search of well over %d steps; want periodic polls, not just entry/exit",
					ctx.polls, 2*CheckNodes)
			}
		})
	}
}

// TestSolversAbortWithinOneBatch cancels the context at a known poll and
// asserts each solver stops at that poll instead of searching on: the
// poll count after the abort stays within a small unwind allowance, so
// cancellation latency is bounded by one CheckNodes batch of search
// steps plus teardown.
func TestSolversAbortWithinOneBatch(t *testing.T) {
	// Poll 2 is the latest injection point every solver reaches on its
	// hard instance: DPLL's unit propagation finishes PHP(5) in exactly
	// two batches, while the watched and brute searches run for many.
	const failAfter = 2
	for name, s := range contextSolvers() {
		t.Run(name, func(t *testing.T) {
			f := hardUnsatFormula(t, name)
			ctx := newCountingContext(failAfter)
			defer ctx.cancel()
			_, _, err := s.SolveContext(ctx, f)
			if !errors.Is(err, governor.ErrCanceled) {
				t.Fatalf("want governor.ErrCanceled, got %v", err)
			}
			if ctx.polls < failAfter {
				t.Fatalf("solver finished after %d polls, before the injected cancellation at poll %d", ctx.polls, failAfter)
			}
			if ctx.polls > failAfter+2 {
				t.Fatalf("solver polled %d times after cancellation fired at poll %d; it kept searching past the batch that observed expiry",
					ctx.polls-failAfter, failAfter)
			}
		})
	}
}
