package sat

import (
	"fmt"
	"sort"

	"relquery/internal/cnf"
)

// WatchedDPLL is an iterative DPLL solver with the two-watched-literals
// scheme: each clause watches two of its literals, and work happens only
// when a watched literal becomes false, making unit propagation cost
// proportional to the clauses actually touched instead of the whole
// formula. Backtracking is chronological (flip the deepest unflipped
// decision); there is no clause learning — the solver is meant as a
// faster, independently implemented cross-check for the recursive DPLL,
// not a CDCL competitor.
type WatchedDPLL struct{}

// Name implements Solver.
func (WatchedDPLL) Name() string { return "watched" }

// Solve implements Solver.
func (w WatchedDPLL) Solve(f *cnf.Formula) (bool, cnf.Assignment, error) {
	return w.solveGated(f, nil)
}

// solveGated is the shared search driver; a nil gate means no context to
// honor.
func (WatchedDPLL) solveGated(f *cnf.Formula, gate *ctxGate) (bool, cnf.Assignment, error) {
	s, sat, err := newWatchedSolver(f)
	if err != nil {
		return false, nil, err
	}
	if !sat {
		return false, nil, nil
	}
	s.gate = gate
	// Assert the initial unit clauses; they are forced at the root, so a
	// conflict here (or while propagating them) is final.
	for _, l := range s.initUnits {
		if !s.enqueueAssign(l, false) {
			return false, nil, nil
		}
	}
	if !s.propagate() {
		if !s.backtrack() {
			return false, nil, nil
		}
	}
	found := s.search()
	if s.err != nil {
		return false, nil, s.err
	}
	if found {
		return true, s.modelOut(), nil
	}
	return false, nil, nil
}

// trailEntry records one assignment for backtracking.
type trailEntry struct {
	lit      cnf.Lit
	decision bool // a free choice (flippable) rather than a propagation
	flipped  bool // this decision's second polarity is already in play
}

type watchedSolver struct {
	numVars   int
	clauses   [][]cnf.Lit
	watches   [][2]int          // per clause: positions of the two watched literals
	watchers  map[cnf.Lit][]int // literal -> clauses watching it
	assign    []value           // 1-indexed variable values
	trail     []trailEntry
	queue     []cnf.Lit // propagation queue of literals just made true
	initUnits []cnf.Lit // unit clauses, asserted before the search starts
	varOrder  []int     // static decision order, most frequent first

	// gate, when non-nil, is polled once per search round; err latches
	// the context error that stopped the search.
	gate *ctxGate
	err  error
}

// newWatchedSolver loads the formula: deduplicates literals, drops
// tautological clauses, enqueues initial units, and reports sat=false
// immediately on an empty clause.
func newWatchedSolver(f *cnf.Formula) (*watchedSolver, bool, error) {
	s := &watchedSolver{
		numVars:  f.NumVars,
		watchers: make(map[cnf.Lit][]int),
		assign:   make([]value, f.NumVars+1),
	}
	freq := make(map[int]int)
	for _, raw := range f.Clauses {
		if raw.Tautological() {
			continue
		}
		c := dedupeLits(raw)
		switch len(c) {
		case 0:
			return nil, false, nil
		case 1:
			s.initUnits = append(s.initUnits, c[0])
		default:
			idx := len(s.clauses)
			s.clauses = append(s.clauses, c)
			s.watches = append(s.watches, [2]int{0, 1})
			s.watchers[c[0]] = append(s.watchers[c[0]], idx)
			s.watchers[c[1]] = append(s.watchers[c[1]], idx)
		}
		for _, l := range c {
			if l.Var() > f.NumVars || l == 0 {
				return nil, false, fmt.Errorf("sat: literal %v out of range", l)
			}
			freq[l.Var()]++
		}
	}
	s.varOrder = make([]int, 0, f.NumVars)
	for v := 1; v <= f.NumVars; v++ {
		s.varOrder = append(s.varOrder, v)
	}
	sort.SliceStable(s.varOrder, func(i, j int) bool {
		return freq[s.varOrder[i]] > freq[s.varOrder[j]]
	})
	return s, true, nil
}

func dedupeLits(c cnf.Clause) []cnf.Lit {
	seen := make(map[cnf.Lit]bool, len(c))
	out := make([]cnf.Lit, 0, len(c))
	for _, l := range c {
		if !seen[l] {
			seen[l] = true
			out = append(out, l)
		}
	}
	return out
}

func (s *watchedSolver) valueOf(l cnf.Lit) value {
	v := s.assign[l.Var()]
	if v == unassigned {
		return unassigned
	}
	if l.Sat(v == vTrue) {
		return vTrue
	}
	return vFalse
}

// enqueueAssign records l := true. It returns false when l is already
// false (conflict).
func (s *watchedSolver) enqueueAssign(l cnf.Lit, decision bool) bool {
	switch s.valueOf(l) {
	case vTrue:
		return true // already set; nothing to do
	case vFalse:
		return false
	}
	s.assign[l.Var()] = boolToValue(l.Pos())
	s.trail = append(s.trail, trailEntry{lit: l, decision: decision})
	s.queue = append(s.queue, l)
	return true
}

// propagate drains the queue, updating watches. It returns false on
// conflict (and clears the queue).
func (s *watchedSolver) propagate() bool {
	for len(s.queue) > 0 {
		l := s.queue[0]
		s.queue = s.queue[1:]
		falsified := l.Neg()
		watching := s.watchers[falsified]
		kept := watching[:0]
		for wi := 0; wi < len(watching); wi++ {
			ci := watching[wi]
			clause := s.clauses[ci]
			w := &s.watches[ci]
			// Identify which watch points at the falsified literal.
			self, other := 0, 1
			if clause[w[1]] == falsified {
				self, other = 1, 0
			}
			otherLit := clause[w[other]]
			if s.valueOf(otherLit) == vTrue {
				kept = append(kept, ci) // clause satisfied; keep watch
				continue
			}
			// Look for a replacement watch: a non-false literal that is
			// not the other watch.
			moved := false
			for pos, cand := range clause {
				if pos == w[other] || cand == falsified {
					continue
				}
				if s.valueOf(cand) != vFalse {
					w[self] = pos
					s.watchers[cand] = append(s.watchers[cand], ci)
					moved = true
					break
				}
			}
			if moved {
				continue // watch moved away; drop from this list
			}
			// No replacement: clause is unit on otherLit, or in conflict.
			kept = append(kept, ci)
			if s.valueOf(otherLit) == vFalse {
				s.watchers[falsified] = append(kept, watching[wi+1:]...)
				s.queue = s.queue[:0]
				return false
			}
			if !s.enqueueAssign(otherLit, false) {
				s.watchers[falsified] = append(kept, watching[wi+1:]...)
				s.queue = s.queue[:0]
				return false
			}
		}
		s.watchers[falsified] = kept
	}
	return true
}

// search runs the DPLL loop: propagate, decide, backtrack on conflict.
func (s *watchedSolver) search() bool {
	for {
		if err := s.gate.tick(); err != nil {
			s.err = err
			return false
		}
		if !s.propagate() {
			if !s.backtrack() {
				return false
			}
			continue
		}
		v := s.pickVar()
		if v == 0 {
			return true // all variables assigned, no conflict
		}
		// Decide: try true first.
		if !s.enqueueAssign(cnf.Lit(v), true) {
			// Cannot happen: v is unassigned.
			return false
		}
	}
}

// pickVar returns the first unassigned variable in static order, or 0.
func (s *watchedSolver) pickVar() int {
	for _, v := range s.varOrder {
		if s.assign[v] == unassigned {
			return v
		}
	}
	return 0
}

// backtrack undoes the trail to the deepest unflipped decision, asserts
// its negation, and returns false when no decision remains (UNSAT).
func (s *watchedSolver) backtrack() bool {
	for len(s.trail) > 0 {
		last := s.trail[len(s.trail)-1]
		s.trail = s.trail[:len(s.trail)-1]
		s.assign[last.lit.Var()] = unassigned
		if last.decision && !last.flipped {
			flipped := last.lit.Neg()
			s.assign[flipped.Var()] = boolToValue(flipped.Pos())
			s.trail = append(s.trail, trailEntry{lit: flipped, decision: true, flipped: true})
			s.queue = append(s.queue[:0], flipped)
			return true
		}
	}
	return false
}

// modelOut extracts the satisfying assignment; unconstrained variables
// default to false.
func (s *watchedSolver) modelOut() cnf.Assignment {
	a := cnf.NewAssignment(s.numVars)
	for v := 1; v <= s.numVars; v++ {
		a.Set(v, s.assign[v] == vTrue)
	}
	return a
}
