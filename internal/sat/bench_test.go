package sat

import (
	"fmt"
	"math/rand"
	"testing"

	"relquery/internal/cnf"
)

// BenchmarkSolvers compares brute force and DPLL across clause densities.
// Expected shape: DPLL orders of magnitude faster on structured instances;
// brute force exponential in n regardless.
func BenchmarkSolvers(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	for _, size := range []struct{ n, m int }{{10, 20}, {14, 40}} {
		g, err := cnf.Random3CNF(rng, size.n, size.m)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("brute/n=%d,m=%d", size.n, size.m), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := (BruteForce{}).Solve(g); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("dpll/n=%d,m=%d", size.n, size.m), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := (DPLL{}).Solve(g); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("watched/n=%d,m=%d", size.n, size.m), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := (WatchedDPLL{}).Solve(g); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPigeonhole measures the solvers on the provably hard
// unsatisfiable family. Expected shape: cost grows super-polynomially in
// the number of holes for both solvers (no clause learning).
func BenchmarkPigeonhole(b *testing.B) {
	for _, holes := range []int{3, 4} {
		php, err := cnf.Pigeonhole(holes)
		if err != nil {
			b.Fatal(err)
		}
		for _, solver := range []Solver{DPLL{}, WatchedDPLL{}} {
			b.Run(fmt.Sprintf("%s/holes=%d", solver.Name(), holes), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					sat, _, err := solver.Solve(php)
					if err != nil || sat {
						b.Fatalf("sat=%v err=%v", sat, err)
					}
				}
			})
		}
	}
}

// BenchmarkCounters compares the model counters. Expected shape: component
// decomposition wins when the formula splits.
func BenchmarkCounters(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	// Two independent halves: component decomposition should split them.
	half1, err := cnf.Random3CNF(rng, 8, 10)
	if err != nil {
		b.Fatal(err)
	}
	g := half1.Clone()
	g.NumVars = 16
	for _, c := range half1.Clauses {
		shifted := make(cnf.Clause, len(c))
		for i, l := range c {
			v := cnf.Lit(l.Var() + 8)
			if !l.Pos() {
				v = v.Neg()
			}
			shifted[i] = v
		}
		g.Clauses = append(g.Clauses, shifted)
	}
	for _, counter := range []Counter{BruteCounter{}, ComponentCounter{}} {
		b.Run(counter.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := counter.Count(g); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
