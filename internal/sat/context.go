package sat

import (
	"context"

	"relquery/internal/cnf"
	"relquery/internal/governor"
)

// CheckNodes is how many search steps pass between context polls in the
// context-aware solvers. SAT search nodes are cheap (a few map lookups
// or watch moves each), so polling every node would dominate; polling
// every CheckNodes keeps the poll cost amortized to noise while bounding
// cancellation latency to one batch of nodes — the same amortization the
// join engines use (governor.CheckEvery) at tuple granularity.
const CheckNodes = 1024

// ContextSolver is a Solver whose search honors a context: deadlines and
// cancellation abort the search within CheckNodes steps, surfacing as
// the resource governor's sentinels (governor.ErrDeadline,
// governor.ErrCanceled) so SAT timeouts and query timeouts are the same
// errors.Is family throughout the module.
type ContextSolver interface {
	Solver
	// SolveContext is Solve under ctx.
	SolveContext(ctx context.Context, f *cnf.Formula) (sat bool, model cnf.Assignment, err error)
}

// SolveContext decides f with s under ctx. Solvers implementing
// ContextSolver are polled mid-search; any other Solver is checked
// before and after its (uninterruptible) run, so a pre-expired context
// never starts the search and a result computed after expiry is
// discarded in favor of the typed error.
func SolveContext(ctx context.Context, s Solver, f *cnf.Formula) (bool, cnf.Assignment, error) {
	if cs, ok := s.(ContextSolver); ok {
		return cs.SolveContext(ctx, f)
	}
	if err := gateFor(ctx).check(); err != nil {
		return false, nil, err
	}
	sat, model, err := s.Solve(f)
	if err != nil {
		return false, nil, err
	}
	if err := gateFor(ctx).check(); err != nil {
		return false, nil, err
	}
	return sat, model, nil
}

// SatisfiableContext decides f with the default solver (DPLL) under ctx.
func SatisfiableContext(ctx context.Context, f *cnf.Formula) (bool, cnf.Assignment, error) {
	return DPLL{}.SolveContext(ctx, f)
}

// ctxGate polls a context once per CheckNodes ticks. A nil gate (no
// cancelable context) reduces every call to one pointer test, keeping
// the non-governed solve paths at full speed.
type ctxGate struct {
	ctx   context.Context
	nodes int
}

// gateFor returns a gate for ctx, or nil when ctx can never expire
// (nil, Background, or any context without deadline or cancel).
func gateFor(ctx context.Context) *ctxGate {
	if ctx == nil || ctx.Done() == nil {
		return nil
	}
	return &ctxGate{ctx: ctx}
}

// tick counts one search step and polls the context on batch
// boundaries.
func (g *ctxGate) tick() error {
	if g == nil {
		return nil
	}
	g.nodes++
	if g.nodes%CheckNodes != 0 {
		return nil
	}
	return g.check()
}

// check polls the context now, mapping expiry onto the governor's
// sentinels.
func (g *ctxGate) check() error {
	if g == nil {
		return nil
	}
	if g.ctx.Err() != nil {
		return governor.WrapContextErr(context.Cause(g.ctx))
	}
	return nil
}

var (
	_ ContextSolver = DPLL{}
	_ ContextSolver = WatchedDPLL{}
	_ ContextSolver = BruteForce{}
)

// SolveContext implements ContextSolver: the recursive search polls ctx
// at every CheckNodes-th node.
func (d DPLL) SolveContext(ctx context.Context, f *cnf.Formula) (bool, cnf.Assignment, error) {
	s := newState(f)
	s.gate = gateFor(ctx)
	sat := solve(s)
	if s.err != nil {
		return false, nil, s.err
	}
	if sat {
		return true, s.model(), nil
	}
	return false, nil, nil
}

// SolveContext implements ContextSolver: the iterative search loop polls
// ctx at every CheckNodes-th propagation-or-decision round.
func (w WatchedDPLL) SolveContext(ctx context.Context, f *cnf.Formula) (bool, cnf.Assignment, error) {
	return w.solveGated(f, gateFor(ctx))
}

// SolveContext implements ContextSolver: enumeration polls ctx at every
// CheckNodes-th assignment.
func (b BruteForce) SolveContext(ctx context.Context, f *cnf.Formula) (bool, cnf.Assignment, error) {
	gate := gateFor(ctx)
	if f.NumVars > MaxBruteVars {
		// Delegate for the uniform too-many-variables error.
		return b.Solve(f)
	}
	a := cnf.NewAssignment(f.NumVars)
	for mask := uint64(0); ; mask++ {
		if err := gate.tick(); err != nil {
			return false, nil, err
		}
		a.FromBits(mask)
		if f.Eval(a) {
			return true, a.Clone(), nil
		}
		if f.NumVars == 0 || mask == (uint64(1)<<uint(f.NumVars))-1 {
			break
		}
	}
	return false, nil, nil
}
