package sat

import (
	"relquery/internal/cnf"
)

// DPLL is a Davis–Putnam–Logemann–Loveland solver: depth-first search with
// unit propagation, pure-literal elimination and a most-occurrences
// branching heuristic. It handles arbitrary CNF, not just 3CNF.
type DPLL struct{}

// Name implements Solver.
func (DPLL) Name() string { return "dpll" }

// Solve implements Solver.
func (DPLL) Solve(f *cnf.Formula) (bool, cnf.Assignment, error) {
	s := newState(f)
	if solve(s) {
		return true, s.model(), nil
	}
	return false, nil, nil
}

func solve(s *state) bool {
	if s.err != nil {
		return false
	}
	if err := s.gate.tick(); err != nil {
		s.err = err
		return false
	}
	ok, trail := s.propagate()
	if !ok {
		s.undo(trail)
		return false
	}
	pureTrail := s.assignPureLiterals()
	trail = append(trail, pureTrail...)

	if s.allSatisfied() {
		return true
	}
	v := s.pickBranchVar()
	if v == 0 {
		// No open clause remains but not all satisfied: conflict.
		s.undo(trail)
		return false
	}
	for _, val := range [2]value{vTrue, vFalse} {
		s.assign[v] = val
		if solve(s) {
			return true
		}
		s.assign[v] = unassigned
	}
	s.undo(trail)
	return false
}

// assignPureLiterals assigns every variable that occurs with a single
// polarity among non-satisfied clauses, repeating to fixpoint. This is a
// satisfiability-preserving (but not model-count-preserving) reduction, so
// it is used by the solver but not by the counter or enumerator.
func (s *state) assignPureLiterals() []int {
	var trail []int
	for {
		polarity := make(map[int]int8) // 1 pos, 2 neg, 3 both
		for _, c := range s.clauses {
			if st, _ := s.status(c); st == csSatisfied {
				continue
			}
			for _, l := range c {
				if s.assign[l.Var()] != unassigned {
					continue
				}
				if l.Pos() {
					polarity[l.Var()] |= 1
				} else {
					polarity[l.Var()] |= 2
				}
			}
		}
		progressed := false
		for v, p := range polarity {
			if p == 1 || p == 2 {
				s.assign[v] = boolToValue(p == 1)
				trail = append(trail, v)
				progressed = true
			}
		}
		if !progressed {
			return trail
		}
	}
}
