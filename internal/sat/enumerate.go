package sat

import (
	"fmt"

	"relquery/internal/cnf"
)

// Enumerate calls fn for every satisfying assignment of f, in
// lexicographic order of the assignment vector (variable 1 varies slowest,
// false before true). Enumeration stops early when fn returns false.
//
// The search assigns variables in index order and prunes as soon as a
// clause is falsified, so it touches only the subtree containing models —
// this is the paper's "nondeterministically guess and check" made
// deterministic.
func Enumerate(f *cnf.Formula, fn func(cnf.Assignment) bool) error {
	if f.NumVars > MaxBruteVars {
		return fmt.Errorf("sat: enumeration limited to %d variables, formula has %d", MaxBruteVars, f.NumVars)
	}
	s := newState(f)
	enumerate(s, 1, fn)
	return nil
}

// enumerate extends the assignment from variable v on; it returns false
// when fn requested a stop.
func enumerate(s *state, v int, fn func(cnf.Assignment) bool) bool {
	// Prune: any clause already falsified kills the whole subtree.
	for _, c := range s.clauses {
		if st, _ := s.status(c); st == csFalsified {
			return true
		}
	}
	if v > s.numVars {
		return fn(s.model())
	}
	for _, val := range [2]value{vFalse, vTrue} {
		s.assign[v] = val
		if !enumerate(s, v+1, fn) {
			s.assign[v] = unassigned
			return false
		}
	}
	s.assign[v] = unassigned
	return true
}

// AllModels returns every satisfying assignment of f in enumeration order.
// The result has a(G) entries — the quantity Theorem 3 proves #P-hard to
// compute from the query side.
func AllModels(f *cnf.Formula) ([]cnf.Assignment, error) {
	var out []cnf.Assignment
	err := Enumerate(f, func(a cnf.Assignment) bool {
		out = append(out, a.Clone())
		return true
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
