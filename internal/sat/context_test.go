package sat

import (
	"context"
	"errors"
	"testing"
	"time"

	"relquery/internal/cnf"
	"relquery/internal/governor"
)

// contextSolvers lists every solver whose search must honor a context.
func contextSolvers() map[string]ContextSolver {
	return map[string]ContextSolver{
		"dpll":    DPLL{},
		"watched": WatchedDPLL{},
		"brute":   BruteForce{},
	}
}

// hardUnsatFormula returns a pigeonhole instance whose search runs for
// well over CheckNodes steps on the named solver, so a dead context is
// guaranteed to be polled mid-search. The sizes are per-solver: the DPLL
// searches need PHP(5) to outlast one poll batch, while BruteForce — an
// exhaustive enumeration capped at MaxBruteVars variables — gets PHP(2)
// (15 variables, 2¹⁵ assignments, polls every 1024).
func hardUnsatFormula(t *testing.T, solver string) *cnf.Formula {
	t.Helper()
	holes := 5
	if solver == "brute" {
		holes = 2
	}
	f, err := cnf.Pigeonhole(holes)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// TestSolveContextBackgroundMatchesSolve verifies SolveContext under a
// background context is exactly Solve: same satisfiability verdict and a
// model that satisfies the formula.
func TestSolveContextBackgroundMatchesSolve(t *testing.T) {
	sat1, err := cnf.Parse("(x1 + x2 + x3)(~x1 + x2 + ~x3)(x1 + ~x2 + x3)")
	if err != nil {
		t.Fatal(err)
	}
	xor, err := cnf.XorChain(3, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []*cnf.Formula{sat1, xor, cnf.PaperExample()} {
		for name, s := range contextSolvers() {
			wantSat, _, wantErr := s.Solve(f)
			gotSat, model, gotErr := SolveContext(context.Background(), s, f)
			if (wantErr == nil) != (gotErr == nil) {
				t.Fatalf("%s: Solve err=%v, SolveContext err=%v", name, wantErr, gotErr)
			}
			if wantSat != gotSat {
				t.Fatalf("%s: Solve says sat=%v, SolveContext says %v", name, wantSat, gotSat)
			}
			if gotSat && !f.Eval(model) {
				t.Fatalf("%s: SolveContext returned a non-model", name)
			}
		}
	}
}

// TestSolveContextCanceledMidSearch runs each solver on a resolution-hard
// unsatisfiable instance under an already-canceled context: the search
// must abort with the typed governor.ErrCanceled sentinel instead of
// running to completion.
func TestSolveContextCanceledMidSearch(t *testing.T) {
	for name, s := range contextSolvers() {
		t.Run(name, func(t *testing.T) {
			f := hardUnsatFormula(t, name)
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			sat, _, err := s.SolveContext(ctx, f)
			if err == nil {
				t.Fatalf("search completed (sat=%v) despite canceled context", sat)
			}
			if !errors.Is(err, governor.ErrCanceled) {
				t.Fatalf("want governor.ErrCanceled, got %v", err)
			}
		})
	}
}

// TestSolveContextDeadline runs the same hard instance under an expired
// deadline: the abort must carry governor.ErrDeadline, unifying SAT
// timeouts with the query engine's sentinel family.
func TestSolveContextDeadline(t *testing.T) {
	for name, s := range contextSolvers() {
		t.Run(name, func(t *testing.T) {
			f := hardUnsatFormula(t, name)
			ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
			defer cancel()
			<-ctx.Done()
			_, _, err := s.SolveContext(ctx, f)
			if !errors.Is(err, governor.ErrDeadline) {
				t.Fatalf("want governor.ErrDeadline, got %v", err)
			}
		})
	}
}

// TestSatisfiableContext covers the package-level helper: live contexts
// solve, dead contexts surface the sentinel.
func TestSatisfiableContext(t *testing.T) {
	f := cnf.PaperExample()
	sat, model, err := SatisfiableContext(context.Background(), f)
	if err != nil {
		t.Fatal(err)
	}
	if sat && !f.Eval(model) {
		t.Fatal("SatisfiableContext returned a non-model")
	}
	wantSat, _, err := (DPLL{}).Solve(f)
	if err != nil {
		t.Fatal(err)
	}
	if sat != wantSat {
		t.Fatalf("SatisfiableContext says sat=%v, Solve says %v", sat, wantSat)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := SatisfiableContext(ctx, hardUnsatFormula(t, "dpll")); !errors.Is(err, governor.ErrCanceled) {
		t.Fatalf("want governor.ErrCanceled, got %v", err)
	}
}

// TestSolverInterruptedIsReusable verifies an aborted search leaves no
// sticky state behind: a fresh SolveContext on a live context agrees with
// the direct solver.
func TestSolverInterruptedIsReusable(t *testing.T) {
	f, err := cnf.XorChain(6, true)
	if err != nil {
		t.Fatal(err)
	}
	for name, s := range contextSolvers() {
		t.Run(name, func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			// The xorchain may be solved in under one poll batch; only the
			// hard instance guarantees an abort, so tolerate either outcome
			// here — the point is the run after it.
			_, _, _ = s.SolveContext(ctx, f)

			wantSat, _, wantErr := s.Solve(f)
			gotSat, model, gotErr := s.SolveContext(context.Background(), f)
			if wantErr != nil || gotErr != nil {
				t.Fatalf("unexpected errors: %v / %v", wantErr, gotErr)
			}
			if wantSat != gotSat {
				t.Fatalf("%s disagrees after an interrupted run: %v vs %v", name, gotSat, wantSat)
			}
			if gotSat && !f.Eval(model) {
				t.Fatal("non-model returned after interrupted run")
			}
		})
	}
}
