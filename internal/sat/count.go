package sat

import (
	"fmt"

	"relquery/internal/cnf"
)

// Counter computes the exact number of satisfying assignments of a
// formula, over all 2^NumVars assignments (variables that do not occur in
// any clause contribute a factor of 2 each). This is the paper's
// enumeration problem #3SAT (Theorem 3).
type Counter interface {
	// Name identifies the counter in experiment tables.
	Name() string
	// Count returns the number of models of f.
	Count(f *cnf.Formula) (int64, error)
}

// BruteCounter counts by enumerating all 2^n assignments.
type BruteCounter struct{}

// Name implements Counter.
func (BruteCounter) Name() string { return "brute" }

// Count implements Counter.
func (BruteCounter) Count(f *cnf.Formula) (int64, error) {
	if f.NumVars > MaxBruteVars {
		return 0, fmt.Errorf("sat: brute counting limited to %d variables, formula has %d", MaxBruteVars, f.NumVars)
	}
	a := cnf.NewAssignment(f.NumVars)
	var count int64
	total := uint64(1) << uint(f.NumVars)
	for mask := uint64(0); mask < total; mask++ {
		a.FromBits(mask)
		if f.Eval(a) {
			count++
		}
	}
	return count, nil
}

// ComponentCounter counts with DPLL-style branching, unit propagation and
// connected-component decomposition (independent sub-formulas multiply).
// Pure-literal elimination is deliberately absent: it preserves
// satisfiability but not model counts.
type ComponentCounter struct{}

// Name implements Counter.
func (ComponentCounter) Name() string { return "component" }

// Count implements Counter.
func (ComponentCounter) Count(f *cnf.Formula) (int64, error) {
	if f.NumVars > MaxBruteVars {
		return 0, fmt.Errorf("sat: counting limited to %d variables, formula has %d (results are int64)", MaxBruteVars, f.NumVars)
	}
	owned := make([]int, f.NumVars)
	for i := range owned {
		owned[i] = i + 1
	}
	clauses := make([]cnf.Clause, len(f.Clauses))
	copy(clauses, f.Clauses)
	return countRec(clauses, owned), nil
}

// CountModels counts models of f with the default counter.
func CountModels(f *cnf.Formula) (int64, error) {
	return ComponentCounter{}.Count(f)
}

// countRec counts assignments to the owned variables satisfying clauses,
// which mention only owned variables.
func countRec(clauses []cnf.Clause, owned []int) int64 {
	// Simplify by unit propagation.
	for {
		unit := cnf.Lit(0)
		for _, c := range clauses {
			if len(c) == 0 {
				return 0
			}
			if len(c) == 1 {
				unit = c[0]
				break
			}
		}
		if unit == 0 {
			break
		}
		clauses = substitute(clauses, unit)
		owned = remove(owned, unit.Var())
		// A falsified clause shows up as an empty clause next round.
	}
	if len(clauses) == 0 {
		return pow2(len(owned))
	}

	// Decompose into connected components over shared variables.
	comps := components(clauses)
	if len(comps) > 1 {
		inClauses := make(map[int]bool)
		total := int64(1)
		for _, comp := range comps {
			vars := varsOf(comp)
			for _, v := range vars {
				inClauses[v] = true
			}
			total *= countRec(comp, vars)
			if total == 0 {
				return 0
			}
		}
		floating := 0
		for _, v := range owned {
			if !inClauses[v] {
				floating++
			}
		}
		return total * pow2(floating)
	}

	// Branch on the most frequent variable.
	freq := make(map[int]int)
	for _, c := range clauses {
		for _, l := range c {
			freq[l.Var()]++
		}
	}
	best, bestCount := 0, -1
	for _, v := range owned {
		if freq[v] > bestCount {
			best, bestCount = v, freq[v]
		}
	}
	rest := remove(owned, best)
	return countRec(substitute(clauses, cnf.Lit(best)), rest) +
		countRec(substitute(clauses, cnf.Lit(-best)), rest)
}

// substitute applies literal l := true: satisfied clauses vanish, the
// complementary literal is removed from the rest. A clause reduced to zero
// literals remains as an (unsatisfiable) empty clause.
func substitute(clauses []cnf.Clause, l cnf.Lit) []cnf.Clause {
	out := make([]cnf.Clause, 0, len(clauses))
	for _, c := range clauses {
		sat := false
		for _, x := range c {
			if x == l {
				sat = true
				break
			}
		}
		if sat {
			continue
		}
		reduced := make(cnf.Clause, 0, len(c))
		for _, x := range c {
			if x != l.Neg() {
				reduced = append(reduced, x)
			}
		}
		out = append(out, reduced)
	}
	return out
}

// components partitions clauses into connected components linked by shared
// variables (union-find over variables).
func components(clauses []cnf.Clause) [][]cnf.Clause {
	parent := make(map[int]int)
	var find func(int) int
	find = func(x int) int {
		p, ok := parent[x]
		if !ok || p == x {
			parent[x] = x
			return x
		}
		root := find(p)
		parent[x] = root
		return root
	}
	union := func(a, b int) { parent[find(a)] = find(b) }

	for _, c := range clauses {
		for i := 1; i < len(c); i++ {
			union(c[0].Var(), c[i].Var())
		}
	}
	groups := make(map[int][]cnf.Clause)
	var order []int
	for _, c := range clauses {
		root := find(c[0].Var())
		if _, ok := groups[root]; !ok {
			order = append(order, root)
		}
		groups[root] = append(groups[root], c)
	}
	out := make([][]cnf.Clause, 0, len(order))
	for _, root := range order {
		out = append(out, groups[root])
	}
	return out
}

// varsOf returns the distinct variables mentioned by the clauses, in first
// occurrence order.
func varsOf(clauses []cnf.Clause) []int {
	seen := make(map[int]bool)
	var out []int
	for _, c := range clauses {
		for _, l := range c {
			if !seen[l.Var()] {
				seen[l.Var()] = true
				out = append(out, l.Var())
			}
		}
	}
	return out
}

func remove(vars []int, v int) []int {
	out := make([]int, 0, len(vars))
	for _, x := range vars {
		if x != v {
			out = append(out, x)
		}
	}
	return out
}

func pow2(n int) int64 {
	return int64(1) << uint(n)
}
