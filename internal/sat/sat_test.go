package sat

import (
	"math/rand"
	"testing"
	"testing/quick"

	"relquery/internal/cnf"
)

func TestBruteForceFixed(t *testing.T) {
	sat, model, err := BruteForce{}.Solve(cnf.PaperExample())
	if err != nil {
		t.Fatal(err)
	}
	if !sat {
		t.Fatal("paper example unsat per brute force")
	}
	if !cnf.PaperExample().Eval(model) {
		t.Fatal("returned model does not satisfy")
	}

	unsat := cnf.MustNew(1, cnf.C(1), cnf.C(-1))
	sat, _, err = BruteForce{}.Solve(unsat)
	if err != nil {
		t.Fatal(err)
	}
	if sat {
		t.Fatal("x & ~x reported satisfiable")
	}
}

func TestBruteForceEmptyFormula(t *testing.T) {
	f := cnf.MustNew(0)
	sat, _, err := BruteForce{}.Solve(f)
	if err != nil || !sat {
		t.Fatalf("empty formula: sat=%v err=%v", sat, err)
	}
	big := &cnf.Formula{NumVars: 100}
	if _, _, err := (BruteForce{}).Solve(big); err == nil {
		t.Error("100-variable brute force accepted")
	}
}

func TestDPLLFixed(t *testing.T) {
	cases := []struct {
		name string
		f    *cnf.Formula
		sat  bool
	}{
		{"paper example", cnf.PaperExample(), true},
		{"contradiction", cnf.MustNew(1, cnf.C(1), cnf.C(-1)), false},
		{"empty", cnf.MustNew(0), true},
		{"single unit", cnf.MustNew(1, cnf.C(1)), true},
		{"chain implication", cnf.MustNew(4, cnf.C(1), cnf.C(-1, 2), cnf.C(-2, 3), cnf.C(-3, 4), cnf.C(-4)), false},
		{"pure literals only", cnf.MustNew(3, cnf.C(1, 2), cnf.C(1, 3)), true},
		{"8-pattern core", mustUnsat8(t), false},
	}
	for _, tc := range cases {
		sat, model, err := DPLL{}.Solve(tc.f)
		if err != nil {
			t.Errorf("%s: %v", tc.name, err)
			continue
		}
		if sat != tc.sat {
			t.Errorf("%s: sat = %v, want %v", tc.name, sat, tc.sat)
		}
		if sat && !tc.f.Eval(model) {
			t.Errorf("%s: model does not satisfy", tc.name)
		}
	}
}

func mustUnsat8(t *testing.T) *cnf.Formula {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	f, err := cnf.Unsatisfiable3CNF(rng, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func randomGeneralCNF(rng *rand.Rand, n, m, maxLen int) *cnf.Formula {
	f := &cnf.Formula{NumVars: n}
	for j := 0; j < m; j++ {
		k := 1 + rng.Intn(maxLen)
		c := make(cnf.Clause, k)
		for i := range c {
			l := cnf.Lit(1 + rng.Intn(n))
			if rng.Intn(2) == 0 {
				l = l.Neg()
			}
			c[i] = l
		}
		f.Clauses = append(f.Clauses, c)
	}
	return f
}

func TestQuickDPLLMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		m := rng.Intn(12)
		formula := randomGeneralCNF(rng, n, m, 4)
		wantSat, _, err := BruteForce{}.Solve(formula)
		if err != nil {
			return false
		}
		gotSat, model, err := DPLL{}.Solve(formula)
		if err != nil {
			return false
		}
		if gotSat != wantSat {
			return false
		}
		if gotSat && !formula.Eval(model) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestCountersFixed(t *testing.T) {
	cases := []struct {
		name string
		f    *cnf.Formula
		want int64
	}{
		{"empty formula", cnf.MustNew(3), 8},
		{"unit", cnf.MustNew(2, cnf.C(1)), 2},
		{"contradiction", cnf.MustNew(2, cnf.C(1), cnf.C(-1)), 0},
		{"one 3-clause", cnf.MustNew(3, cnf.C(1, 2, 3)), 7},
		{"two independent clauses", cnf.MustNew(6, cnf.C(1, 2, 3), cnf.C(4, 5, 6)), 49},
		{"xor-ish", cnf.MustNew(2, cnf.C(1, 2), cnf.C(-1, -2)), 2},
	}
	for _, counter := range []Counter{BruteCounter{}, ComponentCounter{}} {
		for _, tc := range cases {
			got, err := counter.Count(tc.f)
			if err != nil {
				t.Errorf("%s/%s: %v", counter.Name(), tc.name, err)
				continue
			}
			if got != tc.want {
				t.Errorf("%s/%s: count = %d, want %d", counter.Name(), tc.name, got, tc.want)
			}
		}
	}
}

func TestQuickCountersAgree(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(9)
		m := rng.Intn(10)
		formula := randomGeneralCNF(rng, n, m, 4)
		want, err := BruteCounter{}.Count(formula)
		if err != nil {
			return false
		}
		got, err := ComponentCounter{}.Count(formula)
		if err != nil {
			return false
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestCounterOverflowGuard(t *testing.T) {
	big := &cnf.Formula{NumVars: 63}
	if _, err := (ComponentCounter{}).Count(big); err == nil {
		t.Error("63-variable count accepted")
	}
	if _, err := (BruteCounter{}).Count(big); err == nil {
		t.Error("63-variable brute count accepted")
	}
}

func TestEnumerateOrderAndCompleteness(t *testing.T) {
	f := cnf.MustNew(3, cnf.C(1, 2, 3))
	models, err := AllModels(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(models) != 7 {
		t.Fatalf("models = %d, want 7", len(models))
	}
	// Lexicographic order of the assignment vector: 001 comes first.
	if models[0].String() != "001" {
		t.Errorf("first model = %q, want %q", models[0].String(), "001")
	}
	last := models[len(models)-1]
	if last.String() != "111" {
		t.Errorf("last model = %q", last.String())
	}
	for _, m := range models {
		if !f.Eval(m) {
			t.Errorf("enumerated non-model %v", m)
		}
	}
}

func TestEnumerateEarlyStop(t *testing.T) {
	f := cnf.MustNew(4) // 16 models
	count := 0
	err := Enumerate(f, func(cnf.Assignment) bool {
		count++
		return count < 5
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 5 {
		t.Errorf("visited %d, want 5", count)
	}
}

func TestQuickEnumerateMatchesCount(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(7)
		m := rng.Intn(8)
		formula := randomGeneralCNF(rng, n, m, 3)
		want, err := BruteCounter{}.Count(formula)
		if err != nil {
			return false
		}
		models, err := AllModels(formula)
		if err != nil {
			return false
		}
		if int64(len(models)) != want {
			return false
		}
		// Models must be distinct and each must satisfy.
		seen := make(map[string]bool)
		for _, mdl := range models {
			if seen[mdl.String()] || !formula.Eval(mdl) {
				return false
			}
			seen[mdl.String()] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSatisfiableHelper(t *testing.T) {
	sat, model, err := Satisfiable(cnf.PaperExample())
	if err != nil || !sat || !cnf.PaperExample().Eval(model) {
		t.Fatalf("Satisfiable: %v %v %v", sat, model, err)
	}
}

func TestPlantedAndUnsatFamiliesAgreeWithDPLL(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		f, _, err := cnf.PlantedSatisfiable3CNF(rng, 8, 25)
		if err != nil {
			t.Fatal(err)
		}
		sat, _, err := DPLL{}.Solve(f)
		if err != nil || !sat {
			t.Fatalf("planted formula unsat: %v", err)
		}
		g, err := cnf.Unsatisfiable3CNF(rng, 8, 15)
		if err != nil {
			t.Fatal(err)
		}
		sat, _, err = DPLL{}.Solve(g)
		if err != nil || sat {
			t.Fatalf("unsat family satisfiable: %v", err)
		}
	}
}

func TestWatchedDPLLFixed(t *testing.T) {
	cases := []struct {
		name string
		f    *cnf.Formula
		sat  bool
	}{
		{"paper example", cnf.PaperExample(), true},
		{"contradiction", cnf.MustNew(1, cnf.C(1), cnf.C(-1)), false},
		{"empty", cnf.MustNew(0), true},
		{"single unit", cnf.MustNew(1, cnf.C(1)), true},
		{"unit chain unsat", cnf.MustNew(4, cnf.C(1), cnf.C(-1, 2), cnf.C(-2, 3), cnf.C(-3, 4), cnf.C(-4)), false},
		{"tautologies only", cnf.MustNew(2, cnf.C(1, -1), cnf.C(2, -2)), true},
		{"duplicate literals", cnf.MustNew(2, cnf.C(1, 1), cnf.C(-1, 2, 2)), true},
		{"8-pattern core", mustUnsat8(t), false},
	}
	for _, tc := range cases {
		sat, model, err := WatchedDPLL{}.Solve(tc.f)
		if err != nil {
			t.Errorf("%s: %v", tc.name, err)
			continue
		}
		if sat != tc.sat {
			t.Errorf("%s: sat = %v, want %v", tc.name, sat, tc.sat)
		}
		if sat && !tc.f.Eval(model) {
			t.Errorf("%s: model does not satisfy", tc.name)
		}
	}
}

func TestQuickWatchedMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(9)
		m := rng.Intn(14)
		formula := randomGeneralCNF(rng, n, m, 4)
		wantSat, _, err := (BruteForce{}).Solve(formula)
		if err != nil {
			return false
		}
		gotSat, model, err := (WatchedDPLL{}).Solve(formula)
		if err != nil {
			return false
		}
		if gotSat != wantSat {
			return false
		}
		if gotSat && !formula.Eval(model) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestWatchedOnStructuredFamilies(t *testing.T) {
	for holes := 1; holes <= 3; holes++ {
		php, err := cnf.Pigeonhole(holes)
		if err != nil {
			t.Fatal(err)
		}
		sat, _, err := (WatchedDPLL{}).Solve(php)
		if err != nil || sat {
			t.Errorf("PHP(%d): sat=%v err=%v", holes, sat, err)
		}
	}
	for n := 2; n <= 8; n++ {
		xc, err := cnf.XorChain(n, n%2 == 0)
		if err != nil {
			t.Fatal(err)
		}
		sat, model, err := (WatchedDPLL{}).Solve(xc)
		if err != nil || !sat || !xc.Eval(model) {
			t.Errorf("XorChain(%d): sat=%v err=%v", n, sat, err)
		}
	}
}
