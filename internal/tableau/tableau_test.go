package tableau

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"relquery/internal/algebra"
	"relquery/internal/relation"
)

func mkrel(t *testing.T, scheme string, rows ...string) *relation.Relation {
	t.Helper()
	s, err := relation.SchemeOf(scheme)
	if err != nil {
		t.Fatal(err)
	}
	r := relation.New(s)
	for _, row := range rows {
		if _, err := r.Add(relation.TupleOf(strings.Fields(row)...)); err != nil {
			t.Fatal(err)
		}
	}
	return r
}

func parse(t *testing.T, src string, schemes map[string]relation.Scheme) algebra.Expr {
	t.Helper()
	e, err := algebra.Parse(src, schemes)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

var abcScheme = map[string]relation.Scheme{
	"T": relation.MustScheme("A", "B", "C"),
	"U": relation.MustScheme("C", "D"),
}

func TestNewOperandTableau(t *testing.T) {
	tb, err := New(parse(t, "T", abcScheme))
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 1 || tb.Rows[0].Operand != "T" {
		t.Fatalf("rows = %+v", tb.Rows)
	}
	if len(tb.Summary) != 3 {
		t.Fatalf("summary = %v", tb.Summary)
	}
	// Summary vars equal the single row's vars.
	for i, v := range tb.Summary {
		if tb.Rows[0].Vars[i] != v {
			t.Errorf("summary[%d] = v%d, row var v%d", i, v, tb.Rows[0].Vars[i])
		}
	}
}

func TestJoinUnifiesSharedAttributes(t *testing.T) {
	tb, err := New(parse(t, "pi[A B](T) * pi[B C](T)", abcScheme))
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// The two rows share the B variable and nothing else.
	bPos, _ := tb.Rows[0].Scheme.Pos("B")
	bPos2, _ := tb.Rows[1].Scheme.Pos("B")
	if tb.Rows[0].Vars[bPos] != tb.Rows[1].Vars[bPos2] {
		t.Error("B variables not unified")
	}
	aPos, _ := tb.Rows[0].Scheme.Pos("A")
	aPos2, _ := tb.Rows[1].Scheme.Pos("A")
	if tb.Rows[0].Vars[aPos] == tb.Rows[1].Vars[aPos2] {
		t.Error("A variables wrongly unified")
	}
	if got := len(tb.Vars()); got != 5 { // A,B,C from row0; A',C' extra... rows have 3 vars each, B shared => 5
		t.Errorf("vars = %d, want 5", got)
	}
	if !strings.Contains(tb.String(), "summary") {
		t.Errorf("String = %q", tb.String())
	}
}

func TestTableauEvalMatchesAlgebraEval(t *testing.T) {
	r := mkrel(t, "A B C", "1 x p", "2 x q", "2 y q")
	u := mkrel(t, "C D", "p 7", "q 8")
	db := relation.Database{"T": r, "U": u}
	exprs := []string{
		"T",
		"pi[A B](T)",
		"pi[A B](T) * pi[B C](T)",
		"pi[A](pi[A B](T) * pi[B C](T))",
		"T * U",
		"pi[A D](T * U)",
		"pi[A C](T) * U * pi[B C](T)",
	}
	for _, src := range exprs {
		e, err := algebra.ParseForDatabase(src, db)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		want, err := algebra.Eval(e, db)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		tb, err := New(e)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		got, err := tb.Eval(db)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		if !got.Equal(want) {
			t.Errorf("%q: tableau eval %v ≠ algebra eval %v", src, got.Sorted(), want.Sorted())
		}
	}
}

func randomRelation(rng *rand.Rand, scheme relation.Scheme, maxRows int) *relation.Relation {
	r := relation.New(scheme)
	alphabet := []string{"0", "1", "e"}
	for i, n := 0, rng.Intn(maxRows+1); i < n; i++ {
		tp := make(relation.Tuple, scheme.Len())
		for j := range tp {
			tp[j] = relation.Value(alphabet[rng.Intn(len(alphabet))])
		}
		r.MustAdd(tp)
	}
	return r
}

func TestQuickTableauEvalMatchesAlgebra(t *testing.T) {
	exprs := []string{
		"pi[A B](T) * pi[B C](T)",
		"pi[A](pi[A B](T) * pi[B C](T))",
		"pi[A C](T) * pi[A B](T)",
		"T * T",
	}
	f := func(seed int64, pick uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		r := randomRelation(rng, relation.MustScheme("A", "B", "C"), 10)
		db := relation.Database{"T": r}
		e, err := algebra.ParseForDatabase(exprs[int(pick)%len(exprs)], db)
		if err != nil {
			return false
		}
		want, err := algebra.Eval(e, db)
		if err != nil {
			return false
		}
		tb, err := New(e)
		if err != nil {
			return false
		}
		got, err := tb.Eval(db)
		if err != nil {
			return false
		}
		return got.Equal(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMemberMatchesEval(t *testing.T) {
	r := mkrel(t, "A B C", "1 x p", "2 x q", "2 y q")
	db := relation.Single("T", r)
	e, err := algebra.ParseForDatabase("pi[A C](pi[A B](T) * pi[B C](T))", db)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := New(e)
	if err != nil {
		t.Fatal(err)
	}
	result, err := algebra.Eval(e, db)
	if err != nil {
		t.Fatal(err)
	}
	// Every tuple over the active domain is in the result iff Member says so.
	for _, a := range []string{"1", "2"} {
		for _, c := range []string{"p", "q"} {
			nt := relation.NamedTuple{Scheme: relation.MustScheme("A", "C"), Vals: relation.TupleOf(a, c)}
			got, err := tb.Member(nt, db)
			if err != nil {
				t.Fatal(err)
			}
			if got != result.Contains(nt.Vals) {
				t.Errorf("Member(%s %s) = %v, eval says %v", a, c, got, result.Contains(nt.Vals))
			}
		}
	}
	// Wrong scheme errors.
	bad := relation.NamedTuple{Scheme: relation.MustScheme("A", "Z"), Vals: relation.TupleOf("1", "1")}
	if _, err := tb.Member(bad, db); err == nil {
		t.Error("mismatched scheme accepted")
	}
}

func TestMemberReorderedScheme(t *testing.T) {
	r := mkrel(t, "A B", "1 x")
	db := relation.Single("T", r)
	e, err := algebra.ParseForDatabase("T", db)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := New(e)
	if err != nil {
		t.Fatal(err)
	}
	nt := relation.NamedTuple{Scheme: relation.MustScheme("B", "A"), Vals: relation.TupleOf("x", "1")}
	ok, err := tb.Member(nt, db)
	if err != nil || !ok {
		t.Errorf("Member reordered = %v, %v", ok, err)
	}
}

func TestStreamProjectionPushdown(t *testing.T) {
	r := mkrel(t, "A B", "1 x", "2 x")
	db := relation.Single("T", r)
	// pi[B](T): the A column is an existential don't-care, so the search
	// iterates distinct B-projections — exactly one yield, not one per
	// source tuple.
	e, err := algebra.ParseForDatabase("pi[B](T)", db)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := New(e)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	if err := tb.Stream(db, func(relation.Tuple) bool {
		count++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if count != 1 {
		t.Errorf("stream yielded %d, want 1 (projection pushdown)", count)
	}
}

func TestStreamDuplicatesAcrossRowsAndEarlyStop(t *testing.T) {
	r := mkrel(t, "A B C", "1 x p", "1 y q")
	db := relation.Single("T", r)
	// pi[A](pi[A B](T) * pi[B C](T)): A=1 arises from two (A,B) patterns,
	// so the stream yields the tuple (1) twice.
	e, err := algebra.ParseForDatabase("pi[A](pi[A B](T) * pi[B C](T))", db)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := New(e)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	if err := tb.Stream(db, func(tp relation.Tuple) bool {
		if tp[0] != "1" {
			t.Errorf("unexpected tuple %v", tp)
		}
		count++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if count != 2 {
		t.Errorf("stream yielded %d, want 2 (duplicates across valuations)", count)
	}
	// Early stop.
	count = 0
	if err := tb.Stream(db, func(relation.Tuple) bool {
		count++
		return false
	}); err != nil {
		t.Fatal(err)
	}
	if count != 1 {
		t.Errorf("stream after stop yielded %d", count)
	}
}

func TestTableauOperandValidation(t *testing.T) {
	e := parse(t, "T", abcScheme)
	tb, err := New(e)
	if err != nil {
		t.Fatal(err)
	}
	// Missing relation.
	if _, err := tb.Eval(relation.NewDatabase()); err == nil {
		t.Error("missing operand accepted")
	}
	// Wrong scheme in db.
	db := relation.Single("T", mkrel(t, "A B"))
	if _, err := tb.Eval(db); err == nil {
		t.Error("wrong operand scheme accepted")
	}
}

func TestSearchOptionsAgree(t *testing.T) {
	// Every ablation configuration must produce the same result set.
	r := mkrel(t, "A B C", "1 x p", "2 x q", "2 y q", "1 y p")
	db := relation.Single("T", r)
	e, err := algebra.ParseForDatabase("pi[A C](pi[A B](T) * pi[B C](T))", db)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := New(e)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := tb.Eval(db)
	if err != nil {
		t.Fatal(err)
	}
	for _, opts := range []SearchOptions{
		{StaticOrder: true},
		{NoProjectionPushdown: true},
		{StaticOrder: true, NoProjectionPushdown: true},
	} {
		got, err := tb.EvalWith(db, opts)
		if err != nil {
			t.Fatalf("%+v: %v", opts, err)
		}
		if !got.Equal(ref) {
			t.Errorf("%+v: result differs", opts)
		}
	}
}
