package tableau

import (
	"fmt"

	"relquery/internal/relation"
)

// CanonicalDatabase freezes the tableau into a database: every variable
// becomes the constant "v<n>", every row becomes a tuple of its operand's
// relation. The construction realizes the other half of the
// Chandra–Merlin argument: for project–join queries q₁ (this tableau) and
// q₂ over the same target,
//
//	q₁ ⊑ q₂ on all databases  ⇔  frozen(summary₁) ∈ q₂(canonical(q₁)),
//
// because a valuation of q₂'s tableau hitting the frozen summary IS a
// homomorphism into this tableau. FrozenSummary returns the summary's
// image under the freezing.
//
// The canonical database is also the minimal counterexample generator:
// when q₁ ⋢ q₂, the canonical database itself is a database on which
// q₁'s result contains the frozen summary and q₂'s does not.
func (t *Tableau) CanonicalDatabase() (relation.Database, error) {
	db := relation.NewDatabase()
	for _, row := range t.Rows {
		r, ok := db[row.Operand]
		if !ok {
			r = relation.New(row.Scheme)
			db.Put(row.Operand, r)
		}
		if !r.Scheme().SameOrder(row.Scheme) {
			// All rows of one operand share a scheme by construction.
			return nil, fmt.Errorf("tableau: operand %q has rows over differing schemes", row.Operand)
		}
		tuple := make(relation.Tuple, len(row.Vars))
		for i, v := range row.Vars {
			tuple[i] = freeze(v)
		}
		if _, err := r.Add(tuple); err != nil {
			return nil, err
		}
	}
	return db, nil
}

// FrozenSummary returns the summary tuple under the canonical freezing,
// as a named tuple over the target scheme.
func (t *Tableau) FrozenSummary() relation.NamedTuple {
	vals := make(relation.Tuple, len(t.Summary))
	for i, v := range t.Summary {
		vals[i] = freeze(v)
	}
	return relation.NamedTuple{Scheme: t.Target, Vals: vals}
}

func freeze(v Var) relation.Value {
	return relation.Value(fmt.Sprintf("v%d", v))
}

// ContainedInViaCanonical decides t ⊑ u by evaluating u's query over t's
// canonical database and testing for the frozen summary — an independent
// implementation of ContainedIn used to cross-check the homomorphism
// search.
func (t *Tableau) ContainedInViaCanonical(u *Tableau) (bool, error) {
	if !t.Target.Equal(u.Target) {
		return false, fmt.Errorf("tableau: targets %v and %v differ", t.Target, u.Target)
	}
	db, err := t.CanonicalDatabase()
	if err != nil {
		return false, err
	}
	// u may reference operands t never mentions; such a query can only
	// contain t if it has no rows over them, which New guarantees it
	// doesn't — a missing operand therefore means non-containment is
	// undecidable over this canonical db, and in fact the queries are
	// incomparable. Report a descriptive error.
	for _, row := range u.Rows {
		if _, ok := db[row.Operand]; !ok {
			return false, fmt.Errorf("tableau: query mentions operand %q absent from the other query", row.Operand)
		}
	}
	return u.Member(t.FrozenSummary(), db)
}
