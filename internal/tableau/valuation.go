package tableau

import (
	"fmt"

	"relquery/internal/governor"
	"relquery/internal/relation"
)

// SearchOptions disable individual search optimizations, for ablation
// studies (BenchmarkTableauAblation). The zero value is the fully
// optimized search; production callers should not need this type.
type SearchOptions struct {
	// StaticOrder visits rows in tableau order instead of dynamically
	// picking the most constrained row with forward checking.
	StaticOrder bool
	// NoProjectionPushdown makes every row iterate whole source tuples
	// instead of distinct projections onto its relevant attributes.
	NoProjectionPushdown bool
}

// valuationSearch is the backtracking engine behind membership testing and
// streaming enumeration: it assigns each row to a tuple of its operand's
// relation, consistently with a partial variable binding, and reports each
// complete valuation's summary image.
//
// Two classic optimizations keep the search tree close to the number of
// actual results (SearchOptions can disable each for ablation):
//
//   - Projection pushdown. Only a row's RELEVANT positions matter — those
//     whose variable occurs in the summary or in more than one place. All
//     other variables are existential don't-cares, so each row iterates
//     the DISTINCT projections of its relation onto its relevant
//     attributes rather than whole tuples. Without this, every
//     projected-away column multiplies the valuation count (disastrously
//     so for the paper's product gadget R_G ∗ R_{G′}).
//
//   - Dynamic most-constrained-row-first ordering with forward checking:
//     at every node the search recounts each unassigned row's compatible
//     patterns under the current binding, descends into the row with the
//     fewest, and abandons the node as soon as any row has none.
//
// Space stays bounded by the reduced inputs plus the recursion stack; time
// may still be exponential, which is exactly what the paper proves
// unavoidable.
type valuationSearch struct {
	t       *Tableau
	rows    []searchRow
	binding map[Var]relation.Value
	done    []bool
	opts    SearchOptions
	// gov, when non-nil, is polled at every search node: the valuation
	// tree is the paper's exponential object, so without a checkpoint
	// inside it a deadline or cancellation could never interrupt a
	// membership test. govErr latches the violation that stopped the
	// search.
	gov    *governor.Governor
	govErr error
}

// searchRow is one tableau row reduced to its relevant positions.
type searchRow struct {
	// vars are the row's relevant variables; patterns[i][k] is the value
	// variable vars[k] takes under the row's i-th distinct pattern.
	vars     []Var
	patterns []relation.Tuple
}

func newSearch(t *Tableau, db relation.Database) (*valuationSearch, error) {
	return newSearchOpts(t, db, SearchOptions{})
}

func newSearchOpts(t *Tableau, db relation.Database, opts SearchOptions) (*valuationSearch, error) {
	s := &valuationSearch{
		t:       t,
		rows:    make([]searchRow, len(t.Rows)),
		binding: make(map[Var]relation.Value),
		done:    make([]bool, len(t.Rows)),
		opts:    opts,
	}

	// A variable is relevant when it appears in the summary or in two or
	// more positions across the tableau.
	occ := make(map[Var]int)
	for _, row := range t.Rows {
		for _, v := range row.Vars {
			occ[v]++
		}
	}
	relevant := make(map[Var]bool)
	for _, v := range t.Summary {
		relevant[v] = true
	}
	for v, n := range occ {
		if n >= 2 {
			relevant[v] = true
		}
	}

	for i, row := range t.Rows {
		r, err := db.Get(row.Operand)
		if err != nil {
			return nil, err
		}
		if !r.Scheme().Equal(row.Scheme) {
			return nil, fmt.Errorf("tableau: operand %q declared over %v but database relation has scheme %v",
				row.Operand, row.Scheme, r.Scheme())
		}
		var vars []Var
		var cols []int
		for k := 0; k < row.Scheme.Len(); k++ {
			if opts.NoProjectionPushdown || relevant[row.Vars[k]] {
				vars = append(vars, row.Vars[k])
				p, _ := r.Scheme().Pos(row.Scheme.Attr(k))
				cols = append(cols, p)
			}
		}
		// Distinct projections onto the relevant columns.
		seen := make(map[string]struct{}, r.Len())
		var patterns []relation.Tuple
		r.Each(func(tuple relation.Tuple) bool {
			proj := make(relation.Tuple, len(cols))
			for k, c := range cols {
				proj[k] = tuple[c]
			}
			key := proj.Key()
			if _, dup := seen[key]; !dup {
				seen[key] = struct{}{}
				patterns = append(patterns, proj)
			}
			return true
		})
		s.rows[i] = searchRow{vars: vars, patterns: patterns}
	}
	return s, nil
}

// compatible reports whether pattern can be row i's image under the
// current binding.
func (s *valuationSearch) compatible(i int, pattern relation.Tuple) bool {
	row := s.rows[i]
	for k, v := range row.vars {
		if bound, has := s.binding[v]; has && bound != pattern[k] {
			return false
		}
	}
	return true
}

// candidates counts row i's compatible patterns, stopping at limit.
func (s *valuationSearch) candidates(i, limit int) int {
	count := 0
	for _, p := range s.rows[i].patterns {
		if s.compatible(i, p) {
			count++
			if count >= limit {
				break
			}
		}
	}
	return count
}

// pickRow returns the unassigned row with the fewest compatible patterns,
// or -1 when every row is assigned. failed reports a row with zero
// candidates (dead branch).
func (s *valuationSearch) pickRow() (best int, failed bool) {
	best = -1
	bestCount := 0
	for i := range s.rows {
		if s.done[i] {
			continue
		}
		limit := bestCount
		if best == -1 {
			limit = len(s.rows[i].patterns) + 1
		}
		c := s.candidates(i, limit+1)
		if c == 0 {
			return i, true
		}
		if best == -1 || c < bestCount {
			best, bestCount = i, c
			if c == 1 {
				break // cannot do better
			}
		}
	}
	return best, false
}

// run explores valuations; yield is invoked on each complete valuation and
// returns false to stop the search. run reports whether the search ran to
// completion (false means yield stopped it).
func (s *valuationSearch) run(yield func() bool) bool {
	if err := s.gov.Tick(); err != nil {
		s.govErr = err
		return false
	}
	var i int
	if s.opts.StaticOrder {
		i = -1
		for k := range s.rows {
			if !s.done[k] {
				i = k
				break
			}
		}
	} else {
		var failed bool
		i, failed = s.pickRow()
		if failed {
			return true
		}
	}
	if i == -1 {
		return yield()
	}
	s.done[i] = true
	row := s.rows[i]
	cont := true
	for _, pattern := range row.patterns {
		var assigned []Var
		ok := true
		for k, v := range row.vars {
			val := pattern[k]
			if bound, has := s.binding[v]; has {
				if bound != val {
					ok = false
					break
				}
				continue
			}
			s.binding[v] = val
			assigned = append(assigned, v)
		}
		if ok {
			if !s.run(yield) {
				cont = false
			}
		}
		for _, v := range assigned {
			delete(s.binding, v)
		}
		if !cont {
			break
		}
	}
	s.done[i] = false
	return cont
}

// summaryTuple reads the summary's image under the current binding.
func (s *valuationSearch) summaryTuple() relation.Tuple {
	out := make(relation.Tuple, len(s.t.Summary))
	for i, v := range s.t.Summary {
		out[i] = s.binding[v]
	}
	return out
}

// Member reports whether the named tuple belongs to φ(db), where the
// tableau represents φ. This is the paper's Proposition 2 algorithm: bind
// the summary to t and search for a valuation (the NP guess, realized as
// backtracking).
func (t *Tableau) Member(nt relation.NamedTuple, db relation.Database) (bool, error) {
	return t.MemberGov(nt, db, nil)
}

// MemberGov is Member under a governor: the backtracking search polls
// gov at every node, so a deadline, cancellation or sticky failure
// aborts the (potentially exponential) valuation search with the typed
// violation instead of running it to exhaustion. A nil governor is the
// ungoverned Member.
func (t *Tableau) MemberGov(nt relation.NamedTuple, db relation.Database, gov *governor.Governor) (bool, error) {
	if !nt.Scheme.Equal(t.Target) {
		return false, fmt.Errorf("tableau: tuple scheme %v does not match target %v", nt.Scheme, t.Target)
	}
	s, err := newSearch(t, db)
	if err != nil {
		return false, err
	}
	s.gov = gov
	// Pre-bind summary variables to the tuple's values. Two target
	// attributes may share a summary variable; conflicting requirements
	// mean the tuple cannot be in the result.
	for i := 0; i < nt.Scheme.Len(); i++ {
		a := nt.Scheme.Attr(i)
		pos, _ := t.Target.Pos(a)
		v := t.Summary[pos]
		if prev, ok := s.binding[v]; ok && prev != nt.Vals[i] {
			return false, nil
		}
		s.binding[v] = nt.Vals[i]
	}
	found := false
	s.run(func() bool {
		found = true
		return false
	})
	if s.govErr != nil {
		return false, s.govErr
	}
	return found, nil
}

// Stream enumerates the tuples of φ(db) by exhausting all valuations,
// calling yield for each summary image. Within one Stream call, duplicate
// tuples MAY still be yielded (distinct valuations can share a summary
// image), so callers needing set semantics must deduplicate; callers
// searching for a witness (e.g. "is there a result tuple outside r?") can
// stop early by returning false.
func (t *Tableau) Stream(db relation.Database, yield func(relation.Tuple) bool) error {
	return t.StreamGov(db, nil, yield)
}

// StreamGov is Stream under a governor, polled at every search node: a
// violation aborts the enumeration — including time spent in dead
// branches between yields, which per-yield checkpoints cannot see — and
// surfaces as the typed error. A nil governor is the ungoverned Stream.
func (t *Tableau) StreamGov(db relation.Database, gov *governor.Governor, yield func(relation.Tuple) bool) error {
	s, err := newSearch(t, db)
	if err != nil {
		return err
	}
	s.gov = gov
	s.run(func() bool {
		return yield(s.summaryTuple())
	})
	return s.govErr
}

// StreamWith is Stream with explicit search options — the ablation hook.
func (t *Tableau) StreamWith(db relation.Database, opts SearchOptions, yield func(relation.Tuple) bool) error {
	s, err := newSearchOpts(t, db, opts)
	if err != nil {
		return err
	}
	s.run(func() bool {
		return yield(s.summaryTuple())
	})
	return nil
}

// Eval materializes φ(db) from the tableau — an alternative to
// algebra.Eval that never holds intermediate join results: its space is
// bounded by the inputs and the output, at the price of exploring the
// valuation tree.
func (t *Tableau) Eval(db relation.Database) (*relation.Relation, error) {
	return t.EvalWith(db, SearchOptions{})
}

// EvalWith is Eval with explicit search options — the ablation hook.
func (t *Tableau) EvalWith(db relation.Database, opts SearchOptions) (*relation.Relation, error) {
	out := relation.New(t.Target)
	var addErr error
	err := t.StreamWith(db, opts, func(tp relation.Tuple) bool {
		if _, err := out.Add(tp); err != nil {
			addErr = err
			return false
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	if addErr != nil {
		return nil, addErr
	}
	return out, nil
}
