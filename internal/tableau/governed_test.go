package tableau

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"relquery/internal/algebra"
	"relquery/internal/governor"
	"relquery/internal/relation"
)

// crossDB builds three disjoint-scheme relations of 16 rows each: their
// join is a pure cross product with 16³ = 4096 valuations, so the
// streaming search is guaranteed to pass a 256-tick governor poll.
func crossDB(t *testing.T) (algebra.Expr, relation.Database) {
	t.Helper()
	db := relation.Database{}
	for i, pair := range [][2]relation.Attribute{{"A", "B"}, {"C", "D"}, {"E", "F"}} {
		r := relation.New(relation.MustScheme(pair[0], pair[1]))
		for k := 0; k < 16; k++ {
			r.MustAdd(relation.TupleOf(fmt.Sprintf("v%d_%d", i, k), fmt.Sprintf("w%d_%d", i, k)))
		}
		db[fmt.Sprintf("R%d", i)] = r
	}
	expr, err := algebra.ParseForDatabase("R0 * R1 * R2", db)
	if err != nil {
		t.Fatal(err)
	}
	return expr, db
}

// TestStreamGovCanceled aborts a 4096-valuation enumeration with a
// pre-canceled context: StreamGov must stop within one poll batch and
// surface governor.ErrCanceled instead of silently returning a
// truncated stream.
func TestStreamGovCanceled(t *testing.T) {
	expr, db := crossDB(t)
	tb, err := New(expr)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	gov := governor.New(ctx, governor.Limits{})
	yields := 0
	err = tb.StreamGov(db, gov, func(relation.Tuple) bool {
		yields++
		return true
	})
	if !errors.Is(err, governor.ErrCanceled) {
		t.Fatalf("want governor.ErrCanceled, got %v (after %d yields)", err, yields)
	}
	if yields >= 4096 {
		t.Fatal("search ran to exhaustion despite the canceled context")
	}
}

// TestStreamGovNilMatchesStream verifies the nil governor is exactly
// the ungoverned Stream: same tuples, same count.
func TestStreamGovNilMatchesStream(t *testing.T) {
	expr, db := crossDB(t)
	tb, err := New(expr)
	if err != nil {
		t.Fatal(err)
	}
	count := func(gov *governor.Governor) (int, error) {
		n := 0
		err := tb.StreamGov(db, gov, func(relation.Tuple) bool {
			n++
			return true
		})
		return n, err
	}
	ungoverned, err := count(nil)
	if err != nil {
		t.Fatal(err)
	}
	governed, err := count(governor.New(context.Background(), governor.Limits{MaxIntermediateRows: 1 << 20}))
	if err != nil {
		t.Fatal(err)
	}
	if ungoverned != governed || ungoverned != 16*16*16 {
		t.Fatalf("governed stream yielded %d tuples, ungoverned %d, want %d", governed, ungoverned, 16*16*16)
	}
}
