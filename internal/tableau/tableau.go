// Package tableau implements tableaux for project–join expressions in the
// style of Aho, Sagiv and Ullman (1979), the machinery behind the paper's
// Proposition 2 ("testing whether t ∈ φ(R) is in NP ... one may consider
// the tableau corresponding to φ, and guess a valuation showing that
// t ∈ φ(R)").
//
// A tableau has one row per operand occurrence of the expression, each row
// holding one variable per attribute of the operand's scheme, plus a
// summary assigning a variable to every attribute of the target scheme.
// The expression's value is
//
//	φ(db) = { ρ(summary) : ρ maps variables to values such that every
//	          row's image is a tuple of its operand's relation }.
//
// The package provides tableau construction from an algebra.Expr,
// valuation search (membership testing — the simulated NP guess), a
// streaming enumerator of φ(db) used by the Dᵖ/Π₂ᵖ deciders, and
// Chandra–Merlin homomorphism containment and minimization of queries.
package tableau

import (
	"fmt"
	"sort"
	"strings"

	"relquery/internal/algebra"
	"relquery/internal/relation"
)

// Var is a tableau variable. Variables are scoped to one attribute: the
// construction only ever identifies variables appearing under the same
// attribute name, so a valuation never needs to compare values across
// columns (matching the paper's disjoint-domain convention).
type Var int

// Row is one tableau row: a pattern of variables over an operand's scheme.
type Row struct {
	// Operand names the database relation the row must map into.
	Operand string
	// Scheme is the operand's relation scheme.
	Scheme relation.Scheme
	// Vars holds one variable per scheme attribute, aligned by position.
	Vars []Var
}

// Tableau is a tableau with its summary.
type Tableau struct {
	// Target is the expression's target scheme trs(φ).
	Target relation.Scheme
	// Summary holds one variable per target attribute, aligned by
	// position. Every summary variable occurs in at least one row.
	Summary []Var
	// Rows are the operand rows.
	Rows []Row

	nextVar Var
}

// New builds the tableau of a project–join expression.
func New(e algebra.Expr) (*Tableau, error) {
	t := &Tableau{nextVar: 1}
	summary, err := t.build(e)
	if err != nil {
		return nil, err
	}
	t.Target = e.Scheme()
	t.Summary = make([]Var, t.Target.Len())
	for i := 0; i < t.Target.Len(); i++ {
		v, ok := summary[t.Target.Attr(i)]
		if !ok {
			return nil, fmt.Errorf("tableau: internal error: no summary variable for %q", t.Target.Attr(i))
		}
		t.Summary[i] = v
	}
	return t, nil
}

// build constructs rows for e and returns the summary map of e's target
// scheme.
func (t *Tableau) build(e algebra.Expr) (map[relation.Attribute]Var, error) {
	switch x := e.(type) {
	case *algebra.Operand:
		s := x.Scheme()
		row := Row{Operand: x.Name(), Scheme: s, Vars: make([]Var, s.Len())}
		summary := make(map[relation.Attribute]Var, s.Len())
		for i := 0; i < s.Len(); i++ {
			row.Vars[i] = t.fresh()
			summary[s.Attr(i)] = row.Vars[i]
		}
		t.Rows = append(t.Rows, row)
		return summary, nil

	case *algebra.Project:
		inner, err := t.build(x.Of())
		if err != nil {
			return nil, err
		}
		summary := make(map[relation.Attribute]Var, x.Onto().Len())
		for _, a := range x.Onto().Attrs() {
			v, ok := inner[a]
			if !ok {
				return nil, fmt.Errorf("tableau: internal error: projection attribute %q missing", a)
			}
			summary[a] = v
		}
		return summary, nil

	case *algebra.Join:
		var summary map[relation.Attribute]Var
		for _, arg := range x.Args() {
			argSummary, err := t.build(arg)
			if err != nil {
				return nil, err
			}
			if summary == nil {
				summary = argSummary
				continue
			}
			// Natural join: identify summary variables of shared
			// attributes across the whole tableau built so far.
			for a, v := range argSummary {
				if existing, ok := summary[a]; ok {
					t.substitute(v, existing)
				} else {
					summary[a] = v
				}
			}
		}
		return summary, nil

	default:
		return nil, fmt.Errorf("tableau: unknown expression type %T", e)
	}
}

func (t *Tableau) fresh() Var {
	v := t.nextVar
	t.nextVar++
	return v
}

// substitute replaces variable from with to in every row.
func (t *Tableau) substitute(from, to Var) {
	if from == to {
		return
	}
	for _, row := range t.Rows {
		for i, v := range row.Vars {
			if v == from {
				row.Vars[i] = to
			}
		}
	}
}

// String renders the tableau with the summary first, e.g.
//
//	summary [A B]: v1 v2
//	row T [A B C]: v1 v3 v4
func (t *Tableau) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "summary [%v]:", t.Target)
	for _, v := range t.Summary {
		fmt.Fprintf(&b, " v%d", v)
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		fmt.Fprintf(&b, "row %s [%v]:", row.Operand, row.Scheme)
		for _, v := range row.Vars {
			fmt.Fprintf(&b, " v%d", v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Vars returns the distinct variables of the tableau in ascending order.
func (t *Tableau) Vars() []Var {
	seen := make(map[Var]bool)
	for _, row := range t.Rows {
		for _, v := range row.Vars {
			seen[v] = true
		}
	}
	out := make([]Var, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Clone returns a deep, independent copy of the tableau.
func (t *Tableau) Clone() *Tableau { return t.clone() }

// Unify replaces variable from with variable to throughout the tableau —
// rows and summary. It is the primitive the FD chase (package deps) is
// built on.
func (t *Tableau) Unify(from, to Var) {
	if from == to {
		return
	}
	t.substitute(from, to)
	for i, v := range t.Summary {
		if v == from {
			t.Summary[i] = to
		}
	}
}

// clone returns a deep copy of the tableau.
func (t *Tableau) clone() *Tableau {
	c := &Tableau{
		Target:  t.Target,
		Summary: append([]Var(nil), t.Summary...),
		Rows:    make([]Row, len(t.Rows)),
		nextVar: t.nextVar,
	}
	for i, r := range t.Rows {
		c.Rows[i] = Row{Operand: r.Operand, Scheme: r.Scheme, Vars: append([]Var(nil), r.Vars...)}
	}
	return c
}
