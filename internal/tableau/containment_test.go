package tableau

import (
	"math/rand"
	"testing"
	"testing/quick"

	"relquery/internal/algebra"
	"relquery/internal/relation"
)

func tbOf(t *testing.T, src string) *Tableau {
	t.Helper()
	tb, err := New(parse(t, src, abcScheme))
	if err != nil {
		t.Fatal(err)
	}
	return tb
}

func TestContainmentFixedCases(t *testing.T) {
	// T ⊑ π_AB(T)*π_BC(T): the project-join relaxation always contains the
	// original projection... compare over the same target: use full scheme.
	orig := tbOf(t, "pi[A B C](T)")
	relaxed := tbOf(t, "pi[A B](T) * pi[B C](T)")

	le, err := orig.ContainedIn(relaxed)
	if err != nil {
		t.Fatal(err)
	}
	if !le {
		t.Error("T ⊑ π_AB(T)*π_BC(T) should hold")
	}
	ge, err := relaxed.ContainedIn(orig)
	if err != nil {
		t.Fatal(err)
	}
	if ge {
		t.Error("π_AB(T)*π_BC(T) ⊑ T should fail")
	}
	eq, err := orig.EquivalentTo(relaxed)
	if err != nil || eq {
		t.Errorf("equivalence = %v, %v", eq, err)
	}
}

func TestContainmentRedundantJoin(t *testing.T) {
	// T*T ≡ T (over the full scheme).
	a := tbOf(t, "T * T")
	b := tbOf(t, "T")
	eq, err := a.EquivalentTo(b)
	if err != nil || !eq {
		t.Errorf("T*T ≡ T: %v, %v", eq, err)
	}
}

func TestContainmentDifferentTargets(t *testing.T) {
	a := tbOf(t, "pi[A](T)")
	b := tbOf(t, "pi[B](T)")
	if _, err := a.ContainedIn(b); err == nil {
		t.Error("different targets accepted")
	}
}

func TestQuickContainmentSoundOnRandomDatabases(t *testing.T) {
	// If hom-containment says φ1 ⊑ φ2, then φ1(db) ⊆ φ2(db) for every db.
	pairs := [][2]string{
		{"pi[A B C](T)", "pi[A B](T) * pi[B C](T)"},
		{"pi[A](pi[A B C](T))", "pi[A](pi[A B](T) * pi[B C](T))"},
		{"pi[A B](T) * pi[B C](T)", "pi[A B](T) * pi[B C](T) * pi[A C](T)"},
		{"T * T", "T"},
	}
	f := func(seed int64, pick uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		p := pairs[int(pick)%len(pairs)]
		e1, err := algebra.Parse(p[0], abcScheme)
		if err != nil {
			return false
		}
		e2, err := algebra.Parse(p[1], abcScheme)
		if err != nil {
			return false
		}
		t1, err := New(e1)
		if err != nil {
			return false
		}
		t2, err := New(e2)
		if err != nil {
			return false
		}
		contained, err := t1.ContainedIn(t2)
		if err != nil {
			return false
		}
		db := relation.Single("T", randomRelation(rng, relation.MustScheme("A", "B", "C"), 8))
		r1, err := algebra.Eval(e1, db)
		if err != nil {
			return false
		}
		r2, err := algebra.Eval(e2, db)
		if err != nil {
			return false
		}
		sub, err := r1.SubsetOf(r2)
		if err != nil {
			return false
		}
		if contained && !sub {
			return false // unsound!
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMinimizeRemovesRedundantRows(t *testing.T) {
	// T * T has two identical rows; minimization keeps one.
	tb := tbOf(t, "T * T")
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	min, err := tb.Minimize()
	if err != nil {
		t.Fatal(err)
	}
	if len(min.Rows) != 1 {
		t.Errorf("minimized rows = %d, want 1", len(min.Rows))
	}
	eq, err := tb.EquivalentTo(min)
	if err != nil || !eq {
		t.Errorf("minimized tableau not equivalent: %v %v", eq, err)
	}
}

func TestMinimizeKeepsNecessaryRows(t *testing.T) {
	tb := tbOf(t, "pi[A B](T) * pi[B C](T)")
	min, err := tb.Minimize()
	if err != nil {
		t.Fatal(err)
	}
	if len(min.Rows) != 2 {
		t.Errorf("minimized rows = %d, want 2 (both rows necessary)", len(min.Rows))
	}
}

func TestMinimizePreservesSemantics(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		srcs := []string{
			"T * T",
			"pi[A B](T) * pi[B C](T) * pi[A B](T)",
			"pi[A](pi[A B](T) * pi[B C](T))",
			"pi[A B](T) * pi[A B C](T)",
		}
		src := srcs[rng.Intn(len(srcs))]
		e, err := algebra.Parse(src, abcScheme)
		if err != nil {
			return false
		}
		tb, err := New(e)
		if err != nil {
			return false
		}
		min, err := tb.Minimize()
		if err != nil {
			return false
		}
		db := relation.Single("T", randomRelation(rng, relation.MustScheme("A", "B", "C"), 8))
		full, err := tb.Eval(db)
		if err != nil {
			return false
		}
		reduced, err := min.Eval(db)
		if err != nil {
			return false
		}
		return full.Equal(reduced)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
