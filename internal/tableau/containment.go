package tableau

import (
	"fmt"
)

// Chandra–Merlin (1977) containment: for project–join expressions φ₁, φ₂
// over the same target scheme, φ₁(db) ⊆ φ₂(db) for EVERY database db iff
// there is a homomorphism from tableau(φ₂) to tableau(φ₁): a variable
// mapping that sends each row of φ₂'s tableau onto a row of φ₁'s tableau
// over the same operand, and φ₂'s summary onto φ₁'s summary.
//
// This "for all databases" containment is NP-complete and decided here by
// backtracking. It is deliberately different from the paper's Theorem 4
// problem — containment with respect to one FIXED database — which is
// Π₂ᵖ-complete and lives in internal/decide. Comparing the two notions on
// the same queries is part of experiment E8's ablations.

// HomomorphismTo reports whether there is a homomorphism from t to u
// (variables of t mapped to variables of u) preserving operands, schemes
// and the summary. By Chandra–Merlin, hom(t → u) means u's query is
// contained in t's query on every database.
func (t *Tableau) HomomorphismTo(u *Tableau) (bool, error) {
	if !t.Target.Equal(u.Target) {
		return false, fmt.Errorf("tableau: targets %v and %v differ", t.Target, u.Target)
	}
	h := make(map[Var]Var)
	// The summary must map position-aligned: for each target attribute,
	// t's summary variable maps to u's.
	for i := 0; i < t.Target.Len(); i++ {
		a := t.Target.Attr(i)
		upos, _ := u.Target.Pos(a)
		tv, uv := t.Summary[i], u.Summary[upos]
		if prev, ok := h[tv]; ok && prev != uv {
			return false, nil
		}
		h[tv] = uv
	}
	return mapRows(t, u, 0, h), nil
}

// mapRows tries to map t.Rows[i:] into u's rows, extending h.
func mapRows(t, u *Tableau, i int, h map[Var]Var) bool {
	if i == len(t.Rows) {
		return true
	}
	row := t.Rows[i]
	for _, candidate := range u.Rows {
		if candidate.Operand != row.Operand || !candidate.Scheme.Equal(row.Scheme) {
			continue
		}
		var assigned []Var
		ok := true
		for k, v := range row.Vars {
			a := row.Scheme.Attr(k)
			cpos, _ := candidate.Scheme.Pos(a)
			target := candidate.Vars[cpos]
			if prev, has := h[v]; has {
				if prev != target {
					ok = false
					break
				}
				continue
			}
			h[v] = target
			assigned = append(assigned, v)
		}
		if ok && mapRows(t, u, i+1, h) {
			return true
		}
		for _, v := range assigned {
			delete(h, v)
		}
	}
	return false
}

// ContainedIn reports whether t's query is contained in u's query on every
// database (t ⊑ u), i.e. whether there is a homomorphism from u to t.
func (t *Tableau) ContainedIn(u *Tableau) (bool, error) {
	return u.HomomorphismTo(t)
}

// EquivalentTo reports whether the two queries agree on every database.
func (t *Tableau) EquivalentTo(u *Tableau) (bool, error) {
	le, err := t.ContainedIn(u)
	if err != nil || !le {
		return false, err
	}
	return u.ContainedIn(t)
}

// Minimize returns an equivalent tableau with a minimal number of rows:
// it repeatedly deletes a row whenever the original tableau still has a
// homomorphism into the reduced one (which, together with the trivial
// reverse containment, yields equivalence). The result is the classic
// minimal tableau, unique up to variable renaming.
func (t *Tableau) Minimize() (*Tableau, error) {
	cur := t.clone()
	for {
		removed := false
		for i := 0; i < len(cur.Rows); i++ {
			candidate := cur.clone()
			candidate.Rows = append(candidate.Rows[:i], candidate.Rows[i+1:]...)
			if !summaryCovered(candidate) {
				continue
			}
			// Removing a row only weakens the tableau, so cur ⊑ candidate
			// always (the identity embeds candidate's rows into cur, and
			// hom(candidate → cur) means cur ⊑ candidate). Equivalence
			// therefore needs candidate ⊑ cur, i.e. a homomorphism from
			// cur into candidate.
			ok, err := cur.HomomorphismTo(candidate)
			if err != nil {
				return nil, err
			}
			if ok {
				cur = candidate
				removed = true
				break
			}
		}
		if !removed {
			return cur, nil
		}
	}
}

// summaryCovered reports whether every summary variable still occurs in
// some row (a tableau must witness its summary).
func summaryCovered(t *Tableau) bool {
	present := make(map[Var]bool)
	for _, r := range t.Rows {
		for _, v := range r.Vars {
			present[v] = true
		}
	}
	for _, v := range t.Summary {
		if !present[v] {
			return false
		}
	}
	return true
}
