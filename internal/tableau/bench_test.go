package tableau

import (
	"fmt"
	"math/rand"
	"testing"

	"relquery/internal/algebra"
	"relquery/internal/relation"
)

// BenchmarkEvalVsMaterialize compares the tableau engine against
// materializing evaluation on a chain of projections whose intermediate
// joins exceed the output.
func BenchmarkEvalVsMaterialize(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	scheme := relation.MustScheme("A", "B", "C", "D")
	r := relation.New(scheme)
	for i := 0; i < 200; i++ {
		r.MustAdd(relation.TupleOf(
			fmt.Sprintf("%d", rng.Intn(10)),
			fmt.Sprintf("%d", rng.Intn(10)),
			fmt.Sprintf("%d", rng.Intn(10)),
			fmt.Sprintf("%d", rng.Intn(10)),
		))
	}
	db := relation.Single("T", r)
	e, err := algebra.ParseForDatabase("pi[A D](pi[A B](T) * pi[B C](T) * pi[C D](T))", db)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("tableau", func(b *testing.B) {
		tb, err := New(e)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := tb.Eval(db); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("materialize", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := algebra.Eval(e, db); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkMember measures the Proposition 2 membership test for present
// and absent tuples.
func BenchmarkMember(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	scheme := relation.MustScheme("A", "B", "C")
	r := relation.New(scheme)
	for i := 0; i < 300; i++ {
		r.MustAdd(relation.TupleOf(
			fmt.Sprintf("%d", rng.Intn(20)),
			fmt.Sprintf("%d", rng.Intn(20)),
			fmt.Sprintf("%d", rng.Intn(20)),
		))
	}
	db := relation.Single("T", r)
	e, err := algebra.ParseForDatabase("pi[A C](pi[A B](T) * pi[B C](T))", db)
	if err != nil {
		b.Fatal(err)
	}
	tb, err := New(e)
	if err != nil {
		b.Fatal(err)
	}
	hit := relation.NamedTuple{Scheme: relation.MustScheme("A", "C"),
		Vals: relation.Tuple{r.Tuple(0)[0], r.Tuple(0)[2]}}
	miss := relation.NamedTuple{Scheme: relation.MustScheme("A", "C"),
		Vals: relation.TupleOf("nope", "nada")}
	b.Run("hit", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := tb.Member(hit, db); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("miss", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := tb.Member(miss, db); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkTableauAblation quantifies the two search optimizations on the
// paper's gadget query (the design choices DESIGN.md calls out). Expected
// shape: full < static-order < no-pushdown; disabling pushdown is
// catastrophic on queries with many projected-away columns.
func BenchmarkTableauAblation(b *testing.B) {
	// A medium chain query where both optimizations matter.
	rng := rand.New(rand.NewSource(3))
	scheme := relation.MustScheme("A", "B", "C", "D", "E")
	r := relation.New(scheme)
	for i := 0; i < 120; i++ {
		r.MustAdd(relation.TupleOf(
			fmt.Sprintf("%d", rng.Intn(6)),
			fmt.Sprintf("%d", rng.Intn(6)),
			fmt.Sprintf("%d", rng.Intn(6)),
			fmt.Sprintf("%d", rng.Intn(6)),
			fmt.Sprintf("%d", rng.Intn(6)),
		))
	}
	db := relation.Single("T", r)
	e, err := algebra.ParseForDatabase("pi[A E](pi[A B](T) * pi[B C](T) * pi[C D](T) * pi[D E](T))", db)
	if err != nil {
		b.Fatal(err)
	}
	tb, err := New(e)
	if err != nil {
		b.Fatal(err)
	}
	cases := []struct {
		name string
		opts SearchOptions
	}{
		{"full", SearchOptions{}},
		{"static_order", SearchOptions{StaticOrder: true}},
		{"no_pushdown", SearchOptions{NoProjectionPushdown: true}},
		{"neither", SearchOptions{StaticOrder: true, NoProjectionPushdown: true}},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := tb.EvalWith(db, tc.opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
