package tableau

import (
	"math/rand"
	"testing"
	"testing/quick"

	"relquery/internal/algebra"
	"relquery/internal/relation"
)

func TestCanonicalDatabaseShape(t *testing.T) {
	tb := tbOf(t, "pi[A B](T) * pi[B C](T)")
	db, err := tb.CanonicalDatabase()
	if err != nil {
		t.Fatal(err)
	}
	r, err := db.Get("T")
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 2 {
		t.Fatalf("canonical relation has %d rows, want 2", r.Len())
	}
	// The frozen summary is produced by the query on its own canonical db.
	ok, err := tb.Member(tb.FrozenSummary(), db)
	if err != nil || !ok {
		t.Errorf("frozen summary not in own canonical result: %v %v", ok, err)
	}
}

func TestContainedInViaCanonicalMatchesHomomorphism(t *testing.T) {
	pairs := [][2]string{
		{"pi[A B C](T)", "pi[A B](T) * pi[B C](T)"},
		{"pi[A B](T) * pi[B C](T)", "pi[A B C](T)"},
		{"T * T", "T"},
		{"pi[A](pi[A B](T) * pi[B C](T))", "pi[A](T)"},
		{"pi[A](T)", "pi[A](pi[A B](T) * pi[B C](T))"},
	}
	for _, p := range pairs {
		t1 := tbOf(t, p[0])
		t2 := tbOf(t, p[1])
		viaHom, err := t1.ContainedIn(t2)
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		viaCanon, err := t1.ContainedInViaCanonical(t2)
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		if viaHom != viaCanon {
			t.Errorf("%v: hom says %v, canonical says %v", p, viaHom, viaCanon)
		}
	}
}

func TestQuickCanonicalAgreesWithHomomorphism(t *testing.T) {
	srcs := []string{
		"pi[A B C](T)",
		"pi[A B](T) * pi[B C](T)",
		"pi[A B](T) * pi[B C](T) * pi[A C](T)",
		"pi[A](T) * pi[B C](T)",
		"T * T",
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s1 := srcs[rng.Intn(len(srcs))]
		s2 := srcs[rng.Intn(len(srcs))]
		e1, err := algebra.Parse(s1, abcScheme)
		if err != nil {
			return false
		}
		e2, err := algebra.Parse(s2, abcScheme)
		if err != nil {
			return false
		}
		if !e1.Scheme().Equal(e2.Scheme()) {
			return true // incomparable targets; nothing to check
		}
		t1, err := New(e1)
		if err != nil {
			return false
		}
		t2, err := New(e2)
		if err != nil {
			return false
		}
		viaHom, err := t1.ContainedIn(t2)
		if err != nil {
			return false
		}
		viaCanon, err := t1.ContainedInViaCanonical(t2)
		if err != nil {
			return false
		}
		return viaHom == viaCanon
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCanonicalCounterexample(t *testing.T) {
	// q1 = pi[A C](T) is NOT contained in the recombination query; the
	// canonical database must witness it.
	q1 := tbOf(t, "pi[A B](T) * pi[B C](T)")
	q2 := tbOf(t, "pi[A B C](T)")
	contained, err := q1.ContainedIn(q2)
	if err != nil || contained {
		t.Fatalf("setup: %v %v", contained, err)
	}
	db, err := q1.CanonicalDatabase()
	if err != nil {
		t.Fatal(err)
	}
	r1, err := q1.Eval(db)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := q2.Eval(db)
	if err != nil {
		t.Fatal(err)
	}
	frozen := q1.FrozenSummary()
	if !r1.ContainsNamed(frozen) {
		t.Error("canonical db does not produce the frozen summary under q1")
	}
	if r2.ContainsNamed(frozen) {
		t.Error("counterexample db produces the frozen summary under q2 too")
	}
}

func TestContainedInViaCanonicalErrors(t *testing.T) {
	a := tbOf(t, "pi[A](T)")
	b := tbOf(t, "pi[B](T)")
	if _, err := a.ContainedInViaCanonical(b); err == nil {
		t.Error("different targets accepted")
	}
	// Query over a foreign operand.
	other, err := algebra.Parse("pi[A](U2)", map[string]relation.Scheme{
		"U2": relation.MustScheme("A", "B"),
	})
	if err != nil {
		t.Fatal(err)
	}
	tb2, err := New(other)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.ContainedInViaCanonical(tb2); err == nil {
		t.Error("foreign operand accepted")
	}
}
