package governor

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// ParseTimeout parses a CLI -timeout value: a Go duration ("250ms",
// "2s", "1m30s") or a bare number of seconds ("30"). Empty and "0" mean
// no deadline. Negative timeouts are rejected — a deadline in the past
// is always a flag mistake, not a request to fail immediately.
func ParseTimeout(s string) (time.Duration, error) {
	s = strings.TrimSpace(s)
	if s == "" || s == "0" {
		return 0, nil
	}
	var d time.Duration
	if secs, err := strconv.ParseFloat(s, 64); err == nil {
		// Bound before converting: NaN and out-of-range floats convert
		// to int64 implementation-specifically.
		if !(secs >= 0 && secs <= 1e9) {
			return 0, fmt.Errorf("governor: timeout %q out of range", s)
		}
		d = time.Duration(secs * float64(time.Second))
	} else {
		var perr error
		d, perr = time.ParseDuration(s)
		if perr != nil {
			return 0, fmt.Errorf("governor: bad timeout %q (want a duration like 250ms, 2s, 1m30s, or seconds)", s)
		}
	}
	if d < 0 {
		return 0, fmt.Errorf("governor: negative timeout %q", s)
	}
	return d, nil
}

// ParseRows parses a CLI row-budget value: a non-negative integer with
// an optional k/m/g (×1000) suffix, e.g. "3246", "10k", "2m". Empty and
// "0" mean unlimited. The result is guaranteed to fit an int on every
// platform the engine supports.
func ParseRows(s string) (int, error) {
	s = strings.TrimSpace(strings.ToLower(s))
	if s == "" || s == "0" {
		return 0, nil
	}
	mult := int64(1)
	switch {
	case strings.HasSuffix(s, "k"):
		mult, s = 1_000, strings.TrimSuffix(s, "k")
	case strings.HasSuffix(s, "m"):
		mult, s = 1_000_000, strings.TrimSuffix(s, "m")
	case strings.HasSuffix(s, "g"):
		mult, s = 1_000_000_000, strings.TrimSuffix(s, "g")
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("governor: bad row budget %q (want a non-negative integer, optionally with k/m/g suffix)", s)
	}
	const maxRows = int64(1) << 53 // exact in float64, far above any real budget
	if n > maxRows/mult {
		return 0, fmt.Errorf("governor: row budget %q overflows", s)
	}
	return int(n * mult), nil
}

// ParseLimits assembles Limits from the CLI flag values: -timeout and
// -max-rows as accepted by ParseTimeout and ParseRows. maxIntermediate
// and maxMemory arrive as already-typed values (plain flag.Int / Int64).
func ParseLimits(timeout, maxRows string, maxIntermediate int, maxMemory int64) (Limits, error) {
	d, err := ParseTimeout(timeout)
	if err != nil {
		return Limits{}, err
	}
	rows, err := ParseRows(maxRows)
	if err != nil {
		return Limits{}, err
	}
	if maxIntermediate < 0 {
		return Limits{}, fmt.Errorf("governor: negative intermediate-row budget %d", maxIntermediate)
	}
	if maxMemory < 0 {
		return Limits{}, fmt.Errorf("governor: negative memory budget %d", maxMemory)
	}
	return Limits{
		Deadline:            d,
		MaxRows:             rows,
		MaxIntermediateRows: maxIntermediate,
		MaxMemoryBytes:      maxMemory,
	}, nil
}
