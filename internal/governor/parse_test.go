package governor

import (
	"testing"
	"time"
)

func TestParseTimeout(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want time.Duration
		ok   bool
	}{
		{"", 0, true},
		{"0", 0, true},
		{"250ms", 250 * time.Millisecond, true},
		{"2s", 2 * time.Second, true},
		{"1m30s", 90 * time.Second, true},
		{"30", 30 * time.Second, true},
		{"0.5", 500 * time.Millisecond, true},
		{" 2s ", 2 * time.Second, true},
		{"-1s", 0, false},
		{"-3", 0, false},
		{"nan", 0, false},
		{"inf", 0, false},
		{"1e300", 0, false},
		{"bogus", 0, false},
	} {
		got, err := ParseTimeout(tc.in)
		if (err == nil) != tc.ok {
			t.Errorf("ParseTimeout(%q) err = %v, want ok=%v", tc.in, err, tc.ok)
			continue
		}
		if tc.ok && got != tc.want {
			t.Errorf("ParseTimeout(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestParseRows(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want int
		ok   bool
	}{
		{"", 0, true},
		{"0", 0, true},
		{"3246", 3246, true},
		{"10k", 10_000, true},
		{"2m", 2_000_000, true},
		{"1g", 1_000_000_000, true},
		{"10K", 10_000, true},
		{" 5k ", 5_000, true},
		{"-1", 0, false},
		{"1.5", 0, false},
		{"k", 0, false},
		{"10kk", 0, false},
		{"99999999999999999999", 0, false},
		{"9999999999999999g", 0, false},
	} {
		got, err := ParseRows(tc.in)
		if (err == nil) != tc.ok {
			t.Errorf("ParseRows(%q) err = %v, want ok=%v", tc.in, err, tc.ok)
			continue
		}
		if tc.ok && got != tc.want {
			t.Errorf("ParseRows(%q) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestParseLimits(t *testing.T) {
	l, err := ParseLimits("2s", "10k", 500, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	want := Limits{Deadline: 2 * time.Second, MaxRows: 10_000, MaxIntermediateRows: 500, MaxMemoryBytes: 1 << 20}
	if l != want {
		t.Errorf("ParseLimits = %+v, want %+v", l, want)
	}
	if !l.Enabled() {
		t.Error("Enabled() = false")
	}
	if (Limits{}).Enabled() {
		t.Error("zero Limits Enabled() = true")
	}
	if _, err := ParseLimits("bogus", "", 0, 0); err == nil {
		t.Error("bad timeout accepted")
	}
	if _, err := ParseLimits("", "bogus", 0, 0); err == nil {
		t.Error("bad rows accepted")
	}
	if _, err := ParseLimits("", "", -1, 0); err == nil {
		t.Error("negative intermediate budget accepted")
	}
	if _, err := ParseLimits("", "", 0, -1); err == nil {
		t.Error("negative memory budget accepted")
	}
}
