package governor

import (
	"context"
	"errors"
	"testing"
	"time"

	"relquery/internal/obs"
)

func TestNilGovernorNoOps(t *testing.T) {
	var g *Governor
	if err := g.Tick(); err != nil {
		t.Errorf("nil Tick = %v", err)
	}
	if err := g.Check(); err != nil {
		t.Errorf("nil Check = %v", err)
	}
	if err := g.CheckRows(1 << 30); err != nil {
		t.Errorf("nil CheckRows = %v", err)
	}
	if err := g.CheckOutput(1 << 30); err != nil {
		t.Errorf("nil CheckOutput = %v", err)
	}
	if err := g.ChargeBytes(1 << 40); err != nil {
		t.Errorf("nil ChargeBytes = %v", err)
	}
	if err := g.Admit(1e18, 0); err != nil {
		t.Errorf("nil Admit = %v", err)
	}
	if err := g.Err(); err != nil {
		t.Errorf("nil Err = %v", err)
	}
	if g.Context() == nil {
		t.Error("nil Context() = nil, want Background")
	}
}

func TestNewReturnsNilWhenUngoverned(t *testing.T) {
	if g := New(context.Background(), Limits{}); g != nil {
		t.Errorf("New(Background, zero Limits) = %v, want nil (zero-overhead path)", g)
	}
	if g := New(nil, Limits{}); g != nil {
		t.Errorf("New(nil, zero Limits) = %v, want nil", g)
	}
	if g := New(context.Background(), Limits{MaxRows: 1}); g == nil {
		t.Error("New with MaxRows returned nil")
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if g := New(ctx, Limits{}); g == nil {
		t.Error("New with cancelable context returned nil")
	}
}

func TestCancelSurfacesErrCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	g := New(ctx, Limits{})
	if err := g.Check(); err != nil {
		t.Fatalf("pre-cancel Check = %v", err)
	}
	cancel()
	err := g.Check()
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("Check after cancel = %v, want ErrCanceled", err)
	}
	// Sticky: every later checkpoint reports the same violation.
	if err2 := g.Tick(); !errors.Is(err2, ErrCanceled) {
		t.Errorf("Tick after violation = %v, want ErrCanceled", err2)
	}
	if err2 := g.Err(); !errors.Is(err2, ErrCanceled) {
		t.Errorf("Err() = %v, want ErrCanceled", err2)
	}
}

func TestDeadlineSurfacesErrDeadline(t *testing.T) {
	g := New(context.Background(), Limits{Deadline: time.Nanosecond})
	time.Sleep(time.Millisecond)
	if err := g.Check(); !errors.Is(err, ErrDeadline) {
		t.Fatalf("Check past deadline = %v, want ErrDeadline", err)
	}
}

func TestContextDeadlineSurfacesErrDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	g := New(ctx, Limits{})
	time.Sleep(time.Millisecond)
	if err := g.Check(); !errors.Is(err, ErrDeadline) {
		t.Fatalf("Check past ctx deadline = %v, want ErrDeadline", err)
	}
}

func TestTickAmortizesChecks(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	g := New(ctx, Limits{})
	cancel()
	// The cancellation must be noticed within one batch of ticks.
	var err error
	for i := 0; i < CheckEvery+1; i++ {
		if err = g.Tick(); err != nil {
			break
		}
	}
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("cancellation not noticed within %d ticks: %v", CheckEvery+1, err)
	}
}

func TestRowBudgets(t *testing.T) {
	g := New(context.Background(), Limits{MaxIntermediateRows: 100, MaxRows: 10})
	if err := g.CheckRows(100); err != nil {
		t.Errorf("CheckRows(100) at budget = %v", err)
	}
	// CheckOutput must not be pre-poisoned: test output first on a fresh
	// governor, then the intermediate overflow.
	if err := g.CheckOutput(11); !errors.Is(err, ErrRowBudget) {
		t.Errorf("CheckOutput(11) = %v, want ErrRowBudget", err)
	}
	g2 := New(context.Background(), Limits{MaxIntermediateRows: 100})
	if err := g2.CheckRows(101); !errors.Is(err, ErrRowBudget) {
		t.Errorf("CheckRows(101) = %v, want ErrRowBudget", err)
	}
}

func TestMemBudget(t *testing.T) {
	g := New(context.Background(), Limits{MaxMemoryBytes: 1000})
	if err := g.ChargeBytes(600); err != nil {
		t.Fatalf("first charge = %v", err)
	}
	if err := g.ChargeBytes(500); !errors.Is(err, ErrMemBudget) {
		t.Fatalf("second charge = %v, want ErrMemBudget", err)
	}
	if g.BytesCharged() != 1100 {
		t.Errorf("BytesCharged = %d, want 1100", g.BytesCharged())
	}
}

func TestAdmit(t *testing.T) {
	g := New(context.Background(), Limits{MaxIntermediateRows: 100})
	if err := g.Admit(50, 0); err != nil {
		t.Errorf("Admit under budget = %v", err)
	}
	if err := g.Admit(1000, 80); err != nil {
		t.Errorf("Admit with bounded strategy peak under budget = %v", err)
	}
	g2 := New(context.Background(), Limits{MaxIntermediateRows: 100})
	if err := g2.Admit(1000, 0); !errors.Is(err, ErrAdmission) {
		t.Errorf("Admit(1000, 0) = %v, want ErrAdmission", err)
	}
	g3 := New(context.Background(), Limits{MaxIntermediateRows: 100})
	if err := g3.Admit(1000, 500); !errors.Is(err, ErrAdmission) {
		t.Errorf("Admit(1000, 500) = %v, want ErrAdmission (bounded peak also over)", err)
	}
}

func TestViolationCarriesTraceAndUnwraps(t *testing.T) {
	tr := &obs.Trace{}
	v := &Violation{
		Err:   g0RowErr(),
		Trace: tr,
	}
	if !errors.Is(v, ErrRowBudget) {
		t.Error("Violation does not unwrap to its sentinel")
	}
	if TraceOf(v) != tr {
		t.Error("TraceOf lost the trace")
	}
	if TraceOf(errors.New("plain")) != nil {
		t.Error("TraceOf invented a trace")
	}
	if !Violated(v) {
		t.Error("Violated(v) = false")
	}
	if Violated(errors.New("plain")) {
		t.Error("Violated(plain) = true")
	}
}

func g0RowErr() error {
	g := New(context.Background(), Limits{MaxIntermediateRows: 1})
	return g.CheckRows(2)
}

func TestWrapContextErr(t *testing.T) {
	if err := WrapContextErr(nil); err != nil {
		t.Errorf("WrapContextErr(nil) = %v", err)
	}
	if err := WrapContextErr(context.DeadlineExceeded); !errors.Is(err, ErrDeadline) {
		t.Errorf("deadline wrap = %v, want ErrDeadline", err)
	}
	if err := WrapContextErr(context.Canceled); !errors.Is(err, ErrCanceled) {
		t.Errorf("cancel wrap = %v, want ErrCanceled", err)
	}
	plain := errors.New("boom")
	if err := WrapContextErr(plain); !errors.Is(err, plain) {
		t.Errorf("plain error mangled: %v", err)
	}
}

func TestStickyAcrossGoroutines(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	g := New(ctx, Limits{})
	cancel()
	done := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func() {
			var err error
			for j := 0; j < 4*CheckEvery && err == nil; j++ {
				err = g.Tick()
			}
			done <- err
		}()
	}
	for i := 0; i < 8; i++ {
		if err := <-done; !errors.Is(err, ErrCanceled) {
			t.Fatalf("worker %d saw %v, want ErrCanceled", i, err)
		}
	}
}
