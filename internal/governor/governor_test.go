package governor

import (
	"context"
	"errors"
	"testing"
	"time"

	"relquery/internal/obs"
)

func TestNilGovernorNoOps(t *testing.T) {
	var g *Governor
	if err := g.Tick(); err != nil {
		t.Errorf("nil Tick = %v", err)
	}
	if err := g.Check(); err != nil {
		t.Errorf("nil Check = %v", err)
	}
	if err := g.CheckRows(1 << 30); err != nil {
		t.Errorf("nil CheckRows = %v", err)
	}
	if err := g.CheckOutput(1 << 30); err != nil {
		t.Errorf("nil CheckOutput = %v", err)
	}
	if err := g.ChargeBytes(1 << 40); err != nil {
		t.Errorf("nil ChargeBytes = %v", err)
	}
	if err := g.Admit(1e18, 0); err != nil {
		t.Errorf("nil Admit = %v", err)
	}
	if err := g.Err(); err != nil {
		t.Errorf("nil Err = %v", err)
	}
	if g.Context() == nil {
		t.Error("nil Context() = nil, want Background")
	}
}

func TestNewReturnsNilWhenUngoverned(t *testing.T) {
	if g := New(context.Background(), Limits{}); g != nil {
		t.Errorf("New(Background, zero Limits) = %v, want nil (zero-overhead path)", g)
	}
	if g := New(nil, Limits{}); g != nil {
		t.Errorf("New(nil, zero Limits) = %v, want nil", g)
	}
	if g := New(context.Background(), Limits{MaxRows: 1}); g == nil {
		t.Error("New with MaxRows returned nil")
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if g := New(ctx, Limits{}); g == nil {
		t.Error("New with cancelable context returned nil")
	}
}

func TestCancelSurfacesErrCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	g := New(ctx, Limits{})
	if err := g.Check(); err != nil {
		t.Fatalf("pre-cancel Check = %v", err)
	}
	cancel()
	err := g.Check()
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("Check after cancel = %v, want ErrCanceled", err)
	}
	// Sticky: every later checkpoint reports the same violation.
	if err2 := g.Tick(); !errors.Is(err2, ErrCanceled) {
		t.Errorf("Tick after violation = %v, want ErrCanceled", err2)
	}
	if err2 := g.Err(); !errors.Is(err2, ErrCanceled) {
		t.Errorf("Err() = %v, want ErrCanceled", err2)
	}
}

func TestDeadlineSurfacesErrDeadline(t *testing.T) {
	g := New(context.Background(), Limits{Deadline: time.Nanosecond})
	time.Sleep(time.Millisecond)
	if err := g.Check(); !errors.Is(err, ErrDeadline) {
		t.Fatalf("Check past deadline = %v, want ErrDeadline", err)
	}
}

func TestContextDeadlineSurfacesErrDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	g := New(ctx, Limits{})
	time.Sleep(time.Millisecond)
	if err := g.Check(); !errors.Is(err, ErrDeadline) {
		t.Fatalf("Check past ctx deadline = %v, want ErrDeadline", err)
	}
}

func TestTickAmortizesChecks(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	g := New(ctx, Limits{})
	cancel()
	// The cancellation must be noticed within one batch of ticks.
	var err error
	for i := 0; i < CheckEvery+1; i++ {
		if err = g.Tick(); err != nil {
			break
		}
	}
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("cancellation not noticed within %d ticks: %v", CheckEvery+1, err)
	}
}

func TestRowBudgets(t *testing.T) {
	g := New(context.Background(), Limits{MaxIntermediateRows: 100, MaxRows: 10})
	if err := g.CheckRows(100); err != nil {
		t.Errorf("CheckRows(100) at budget = %v", err)
	}
	// CheckOutput must not be pre-poisoned: test output first on a fresh
	// governor, then the intermediate overflow.
	if err := g.CheckOutput(11); !errors.Is(err, ErrRowBudget) {
		t.Errorf("CheckOutput(11) = %v, want ErrRowBudget", err)
	}
	g2 := New(context.Background(), Limits{MaxIntermediateRows: 100})
	if err := g2.CheckRows(101); !errors.Is(err, ErrRowBudget) {
		t.Errorf("CheckRows(101) = %v, want ErrRowBudget", err)
	}
}

func TestMemBudget(t *testing.T) {
	g := New(context.Background(), Limits{MaxMemoryBytes: 1000})
	if err := g.ChargeBytes(600); err != nil {
		t.Fatalf("first charge = %v", err)
	}
	if err := g.ChargeBytes(500); !errors.Is(err, ErrMemBudget) {
		t.Fatalf("second charge = %v, want ErrMemBudget", err)
	}
	if g.BytesCharged() != 1100 {
		t.Errorf("BytesCharged = %d, want 1100", g.BytesCharged())
	}
}

func TestAdmit(t *testing.T) {
	g := New(context.Background(), Limits{MaxIntermediateRows: 100})
	if err := g.Admit(50, 0); err != nil {
		t.Errorf("Admit under budget = %v", err)
	}
	if err := g.Admit(1000, 80); err != nil {
		t.Errorf("Admit with bounded strategy peak under budget = %v", err)
	}
	g2 := New(context.Background(), Limits{MaxIntermediateRows: 100})
	if err := g2.Admit(1000, 0); !errors.Is(err, ErrAdmission) {
		t.Errorf("Admit(1000, 0) = %v, want ErrAdmission", err)
	}
	g3 := New(context.Background(), Limits{MaxIntermediateRows: 100})
	if err := g3.Admit(1000, 500); !errors.Is(err, ErrAdmission) {
		t.Errorf("Admit(1000, 500) = %v, want ErrAdmission (bounded peak also over)", err)
	}
}

func TestViolationCarriesTraceAndUnwraps(t *testing.T) {
	tr := &obs.Trace{}
	v := &Violation{
		Err:   g0RowErr(),
		Trace: tr,
	}
	if !errors.Is(v, ErrRowBudget) {
		t.Error("Violation does not unwrap to its sentinel")
	}
	if TraceOf(v) != tr {
		t.Error("TraceOf lost the trace")
	}
	if TraceOf(errors.New("plain")) != nil {
		t.Error("TraceOf invented a trace")
	}
	if !Violated(v) {
		t.Error("Violated(v) = false")
	}
	if Violated(errors.New("plain")) {
		t.Error("Violated(plain) = true")
	}
}

func g0RowErr() error {
	g := New(context.Background(), Limits{MaxIntermediateRows: 1})
	return g.CheckRows(2)
}

func TestWrapContextErr(t *testing.T) {
	if err := WrapContextErr(nil); err != nil {
		t.Errorf("WrapContextErr(nil) = %v", err)
	}
	if err := WrapContextErr(context.DeadlineExceeded); !errors.Is(err, ErrDeadline) {
		t.Errorf("deadline wrap = %v, want ErrDeadline", err)
	}
	if err := WrapContextErr(context.Canceled); !errors.Is(err, ErrCanceled) {
		t.Errorf("cancel wrap = %v, want ErrCanceled", err)
	}
	plain := errors.New("boom")
	if err := WrapContextErr(plain); !errors.Is(err, plain) {
		t.Errorf("plain error mangled: %v", err)
	}
}

func TestStickyAcrossGoroutines(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	g := New(ctx, Limits{})
	cancel()
	done := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func() {
			var err error
			for j := 0; j < 4*CheckEvery && err == nil; j++ {
				err = g.Tick()
			}
			done <- err
		}()
	}
	for i := 0; i < 8; i++ {
		if err := <-done; !errors.Is(err, ErrCanceled) {
			t.Fatalf("worker %d saw %v, want ErrCanceled", i, err)
		}
	}
}

// TestViolationCounting: each evaluation counts its violation exactly
// once, keyed by the sentinel that tripped, even though the sticky latch
// keeps re-reporting the same error at every later checkpoint.
func TestViolationCounting(t *testing.T) {
	var m obs.Metrics

	// Row-budget trip: repeated checkpoints after the trip must not
	// double-count.
	g := New(context.Background(), Limits{MaxIntermediateRows: 10}).WithMetrics(&m)
	if err := g.CheckRows(11); !errors.Is(err, ErrRowBudget) {
		t.Fatalf("CheckRows = %v, want ErrRowBudget", err)
	}
	_ = g.CheckRows(12)
	_ = g.Tick()
	_ = g.Err()

	// Admission rejection on a second evaluation sharing the metrics.
	g2 := New(context.Background(), Limits{MaxIntermediateRows: 10}).WithMetrics(&m)
	if err := g2.Admit(1e6, 0); !errors.Is(err, ErrAdmission) {
		t.Fatalf("Admit = %v, want ErrAdmission", err)
	}

	// Cancellation on a third.
	ctx, cancel := context.WithCancel(context.Background())
	g3 := New(ctx, Limits{}).WithMetrics(&m)
	cancel()
	if err := g3.Check(); !errors.Is(err, ErrCanceled) {
		t.Fatalf("Check = %v, want ErrCanceled", err)
	}

	snap := m.Snapshot()
	if snap.ViolationsRowBudget != 1 {
		t.Errorf("ViolationsRowBudget = %d, want 1 (sticky latch counts once)", snap.ViolationsRowBudget)
	}
	if snap.ViolationsAdmission != 1 {
		t.Errorf("ViolationsAdmission = %d, want 1", snap.ViolationsAdmission)
	}
	if snap.ViolationsCanceled != 1 {
		t.Errorf("ViolationsCanceled = %d, want 1", snap.ViolationsCanceled)
	}
	if got := snap.ViolationsTotal(); got != 3 {
		t.Errorf("ViolationsTotal = %d, want 3", got)
	}
}

// TestFailEngineErrorNotCounted: Fail with a non-sentinel engine error
// (a recovered panic, say) latches the failure but is not a governance
// violation.
func TestFailEngineErrorNotCounted(t *testing.T) {
	var m obs.Metrics
	g := New(context.Background(), Limits{MaxRows: 1}).WithMetrics(&m)
	boom := errors.New("worker panic")
	if err := g.Fail(boom); !errors.Is(err, boom) {
		t.Fatalf("Fail = %v, want the engine error", err)
	}
	if got := m.Snapshot().ViolationsTotal(); got != 0 {
		t.Errorf("ViolationsTotal = %d, want 0 for non-sentinel failures", got)
	}
}

// TestWithMetricsNilSafety: WithMetrics is chainable off nil governors
// (the ungoverned path) and tolerates nil metrics.
func TestWithMetricsNilSafety(t *testing.T) {
	var g *Governor
	if got := g.WithMetrics(&obs.Metrics{}); got != nil {
		t.Errorf("nil Governor.WithMetrics = %v, want nil", got)
	}
	g2 := New(context.Background(), Limits{MaxRows: 1}).WithMetrics(nil)
	if g2 == nil {
		t.Fatal("WithMetrics(nil) lost the governor")
	}
	if err := g2.CheckOutput(2); !errors.Is(err, ErrRowBudget) {
		t.Errorf("CheckOutput = %v, want ErrRowBudget (counting disabled, checks live)", err)
	}
}
