// Package governor is the resource-governance layer of the query engine:
// context-aware cancellation, deadlines, row and memory budgets, and
// pre-flight admission control, shared by every evaluation strategy.
//
// The package exists because the paper proves that query evaluation can
// blow up super-polynomially with no warning (Cosmadakis 1983, Lemma 1),
// and the repo already computes the warning signs — AGM bounds
// (internal/join/agm.go), greedy-plan peak predictions
// (join.PredictedPeakGreedy / join.WorstCasePeakGreedy) and the decide
// budget — but, before this package, nothing could stop an evaluation
// once started. A Governor threads a context.Context and a Limits through
// the whole stack; every join strategy checks it cooperatively at
// tuple-batch granularity, so a runaway evaluation dies with a typed,
// errors.Is-able sentinel instead of running to completion or OOM.
//
// Atserias–Grohe–Marx size bounds are the principled basis for the
// admission-control half: when the n-ary AGM bound or the worst-case
// greedy peak already exceeds the intermediate-row budget, the query is
// rejected before any join runs (ErrAdmission) rather than killed
// after the fact.
//
// # Zero-overhead contract
//
// Mirroring internal/obs: every method is safe to call on a nil
// *Governor and does nothing there. Ungoverned evaluation threads a nil
// governor and the entire layer reduces to nil checks — no atomics, no
// clock reads. A live governor amortizes its clock reads over CheckEvery
// ticks, so even governed hot loops pay one atomic add per tuple batch.
//
// governor sits below every engine package: it imports only the standard
// library and internal/obs (for the partial span tree a Violation
// carries), so internal/join, internal/algebra, internal/decide and
// internal/sat can all consult it without cycles.
package governor

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"relquery/internal/obs"
)

// Sentinel errors. Every governance violation arrives wrapped (via
// fmt.Errorf("%w: ...") or a *Violation), so callers must match with
// errors.Is, never ==; the errwrapcheck analyzer enforces this.
var (
	// ErrDeadline reports that the evaluation's wall-clock deadline
	// (Limits.Deadline or the context's own deadline) passed.
	ErrDeadline = errors.New("governor: deadline exceeded")
	// ErrCanceled reports that the evaluation's context was canceled.
	ErrCanceled = errors.New("governor: evaluation canceled")
	// ErrRowBudget reports that a materialized relation exceeded
	// Limits.MaxIntermediateRows, or the final result exceeded
	// Limits.MaxRows.
	ErrRowBudget = errors.New("governor: row budget exceeded")
	// ErrMemBudget reports that the evaluation's estimated resident bytes
	// exceeded Limits.MaxMemoryBytes.
	ErrMemBudget = errors.New("governor: memory budget exceeded")
	// ErrAdmission reports a pre-flight rejection: the AGM bound or the
	// predicted greedy peak of a join node already exceeds the
	// intermediate-row budget, so the join was refused before running.
	ErrAdmission = errors.New("governor: admission denied")
)

// Limits bounds one evaluation. The zero Limits is unlimited.
type Limits struct {
	// Deadline is the wall-clock budget for the whole evaluation,
	// measured from New. Zero means no deadline (the context's own
	// deadline, if any, still applies).
	Deadline time.Duration
	// MaxRows, when positive, caps the final result cardinality.
	MaxRows int
	// MaxIntermediateRows, when positive, caps the cardinality of every
	// materialized intermediate relation — the guard rail against the
	// paper's exponential blow-up, and the threshold admission control
	// compares predictions against.
	MaxIntermediateRows int
	// MaxMemoryBytes, when positive, caps the evaluation's estimated
	// cumulative materialized bytes (a scheme-width model, not a
	// measured RSS; see Governor.ChargeBytes).
	MaxMemoryBytes int64
}

// Enabled reports whether any limit is set.
func (l Limits) Enabled() bool {
	return l.Deadline > 0 || l.MaxRows > 0 || l.MaxIntermediateRows > 0 || l.MaxMemoryBytes > 0
}

// CheckEvery is the tick granularity: a governed loop calls Tick once
// per tuple (or unit of work), and the governor performs the real
// context/deadline check every CheckEvery-th tick. The value trades
// cancellation latency (at most CheckEvery tuples of extra work) against
// per-tuple overhead (one atomic add).
const CheckEvery = 256

// Governor carries one evaluation's context and limits through the
// engine. A single Governor is shared by every goroutine of one
// evaluation (all state is atomic); violations are sticky — once any
// checkpoint trips, every subsequent checkpoint returns the same error,
// which is what lets parallel workers drain promptly after a first
// failure.
//
// The nil *Governor is the ungoverned evaluation: every method no-ops.
type Governor struct {
	ctx      context.Context
	limits   Limits
	deadline time.Time // zero when no deadline applies

	// metrics, when non-nil, receives one Violation count — keyed by the
	// sentinel that tripped — when the sticky failure latch first trips.
	metrics *obs.Metrics

	ticks atomic.Int64
	bytes atomic.Int64
	// failure holds the first violation (*governedErr) once tripped.
	failure atomic.Pointer[governedErr]
}

type governedErr struct{ err error }

// New returns a Governor enforcing limits under ctx. A nil result is
// returned when ctx is context.Background() (or nil) and no limit is
// set, so ungoverned callers stay on the zero-overhead path.
func New(ctx context.Context, limits Limits) *Governor {
	if ctx == nil {
		ctx = context.Background()
	}
	if !limits.Enabled() && ctx.Done() == nil {
		return nil
	}
	g := &Governor{ctx: ctx, limits: limits}
	if limits.Deadline > 0 {
		g.deadline = time.Now().Add(limits.Deadline)
	}
	if d, ok := ctx.Deadline(); ok && (g.deadline.IsZero() || d.Before(g.deadline)) {
		g.deadline = d
	}
	return g
}

// Limits returns the governor's limits (the zero Limits for nil).
func (g *Governor) Limits() Limits {
	if g == nil {
		return Limits{}
	}
	return g.limits
}

// Context returns the governor's context (context.Background for nil),
// for layers — like the SAT solver — that take a context directly.
func (g *Governor) Context() context.Context {
	if g == nil {
		return context.Background()
	}
	return g.ctx
}

// Err returns the sticky violation, or nil. Parallel workers poll it to
// drain promptly after another worker trips a checkpoint.
func (g *Governor) Err() error {
	if g == nil {
		return nil
	}
	if f := g.failure.Load(); f != nil {
		return f.err
	}
	return nil
}

// WithMetrics attaches an obs.Metrics to the governor: when the sticky
// failure latch first trips on a governance sentinel, the matching
// violation counter is incremented — exactly once per evaluation, so the
// counters read as "evaluations killed, by sentinel" and an admission
// rejection is as visible as a mid-flight kill. A nil governor or nil
// metrics passes through unchanged, preserving the zero-overhead path.
// WithMetrics returns its receiver for call chaining; it must be called
// before the governor is shared across goroutines.
func (g *Governor) WithMetrics(m *obs.Metrics) *Governor {
	if g == nil || m == nil {
		return g
	}
	g.metrics = m
	return g
}

// violationKind maps a violation chain to its obs counter kind, or ""
// for non-sentinel errors (Fail broadcasts engine errors too — those are
// failures, not governance violations).
func violationKind(err error) string {
	switch {
	case errors.Is(err, ErrDeadline):
		return obs.ViolationDeadline
	case errors.Is(err, ErrCanceled):
		return obs.ViolationCanceled
	case errors.Is(err, ErrRowBudget):
		return obs.ViolationRowBudget
	case errors.Is(err, ErrMemBudget):
		return obs.ViolationMemBudget
	case errors.Is(err, ErrAdmission):
		return obs.ViolationAdmission
	default:
		return ""
	}
}

// fail records err as the sticky violation (first writer wins), counts
// it into the attached metrics, and returns the violation in effect.
func (g *Governor) fail(err error) error {
	ge := &governedErr{err: err}
	if g.failure.CompareAndSwap(nil, ge) {
		if kind := violationKind(err); kind != "" {
			g.metrics.Violation(kind)
		}
		return err
	}
	return g.failure.Load().err
}

// Fail records err as the evaluation's sticky failure (first writer
// wins) and returns the failure in effect. Engines use it to broadcast a
// failure the governor's own checkpoints cannot see — a recovered worker
// panic — so sibling workers drain on their next poll. A nil governor or
// nil err passes err through unchanged.
func (g *Governor) Fail(err error) error {
	if g == nil || err == nil {
		return err
	}
	return g.fail(err)
}

// Tick is the per-tuple cooperative checkpoint: it counts one unit of
// work and, every CheckEvery-th call, performs the full
// cancellation/deadline check. Governed loops call it unconditionally —
// the nil receiver returns nil immediately.
func (g *Governor) Tick() error {
	if g == nil {
		return nil
	}
	if g.ticks.Add(1)%CheckEvery != 0 {
		if f := g.failure.Load(); f != nil {
			return f.err
		}
		return nil
	}
	return g.Check()
}

// Check performs the full checkpoint immediately: sticky violation,
// context cancellation, then deadline. Engines call it at coarse
// boundaries (between binary joins, per semijoin sweep); hot loops use
// Tick.
func (g *Governor) Check() error {
	if g == nil {
		return nil
	}
	if f := g.failure.Load(); f != nil {
		return f.err
	}
	if err := g.ctx.Err(); err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			return g.fail(fmt.Errorf("%w: context deadline passed", ErrDeadline))
		}
		return g.fail(fmt.Errorf("%w: %w", ErrCanceled, context.Cause(g.ctx)))
	}
	if !g.deadline.IsZero() && time.Now().After(g.deadline) {
		return g.fail(fmt.Errorf("%w: evaluation ran past %v budget", ErrDeadline, g.limits.Deadline))
	}
	return nil
}

// CheckRows enforces MaxIntermediateRows against one materialized
// intermediate relation's cardinality.
func (g *Governor) CheckRows(rows int) error {
	if g == nil {
		return nil
	}
	if max := g.limits.MaxIntermediateRows; max > 0 && rows > max {
		return g.fail(fmt.Errorf("%w: intermediate relation has %d rows > budget %d", ErrRowBudget, rows, max))
	}
	return nil
}

// CheckOutput enforces MaxRows against the final result cardinality.
func (g *Governor) CheckOutput(rows int) error {
	if g == nil {
		return nil
	}
	if max := g.limits.MaxRows; max > 0 && rows > max {
		return g.fail(fmt.Errorf("%w: result has %d rows > -max-rows %d", ErrRowBudget, rows, max))
	}
	return nil
}

// ChargeBytes adds an allocation estimate to the evaluation's memory
// account and enforces MaxMemoryBytes. The account only grows — the
// engine materializes set-semantics relations whose lifetime the
// governor cannot see, so the model is cumulative bytes materialized, a
// conservative (over-)estimate of peak residency.
func (g *Governor) ChargeBytes(n int64) error {
	if g == nil || n <= 0 {
		return nil
	}
	total := g.bytes.Add(n)
	if max := g.limits.MaxMemoryBytes; max > 0 && total > max {
		return g.fail(fmt.Errorf("%w: ≈%d bytes materialized > budget %d", ErrMemBudget, total, max))
	}
	return nil
}

// BytesCharged reports the cumulative materialized-byte estimate.
func (g *Governor) BytesCharged() int64 {
	if g == nil {
		return 0
	}
	return g.bytes.Load()
}

// Admit is the pre-flight admission gate for one n-ary join node: it
// rejects — before any join work runs — when the node's predicted peak
// intermediate (the larger of the statistics estimate and the worst-case
// greedy AGM peak) exceeds MaxIntermediateRows, unless the chosen
// strategy's own peak stays within budget (boundedPeak, e.g. the n-ary
// AGM bound for a worst-case-optimal join; pass 0 when the strategy
// offers no such bound). With no MaxIntermediateRows, admission always
// passes.
func (g *Governor) Admit(predictedPeak, boundedPeak float64) error {
	if g == nil {
		return nil
	}
	max := g.limits.MaxIntermediateRows
	if max <= 0 || predictedPeak <= float64(max) {
		return nil
	}
	if boundedPeak > 0 && boundedPeak <= float64(max) {
		return nil
	}
	return g.fail(fmt.Errorf(
		"%w: predicted peak intermediate ≈%.0f rows > budget %d (reject before running; override with -admit=false)",
		ErrAdmission, predictedPeak, max))
}

// Violation is a governance failure annotated with the partial obs span
// tree at the time of death, so EXPLAIN ANALYZE can render where the
// budget died. It wraps (never replaces) the sentinel chain: errors.Is
// against the Err* sentinels sees through it.
type Violation struct {
	// Err is the wrapped violation chain containing one of the package
	// sentinels.
	Err error
	// Trace is the partial span tree + metrics captured when evaluation
	// died (nil when no collector was attached).
	Trace *obs.Trace
}

// Error implements error.
func (v *Violation) Error() string { return v.Err.Error() }

// Unwrap exposes the sentinel chain to errors.Is / errors.As.
func (v *Violation) Unwrap() error { return v.Err }

// Violated reports whether err is (or wraps) any governor sentinel.
func Violated(err error) bool {
	return errors.Is(err, ErrDeadline) ||
		errors.Is(err, ErrCanceled) ||
		errors.Is(err, ErrRowBudget) ||
		errors.Is(err, ErrMemBudget) ||
		errors.Is(err, ErrAdmission)
}

// TraceOf extracts the partial trace carried by a Violation in err's
// chain, or nil.
func TraceOf(err error) *obs.Trace {
	var v *Violation
	if errors.As(err, &v) {
		return v.Trace
	}
	return nil
}

// WrapContextErr translates a bare context error into the matching
// governor sentinel chain, for layers that consult a context directly
// (the SAT solver's search loops). Non-context errors pass through
// unchanged; nil stays nil.
func WrapContextErr(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, context.DeadlineExceeded):
		return fmt.Errorf("%w: context deadline passed", ErrDeadline)
	case errors.Is(err, context.Canceled):
		return fmt.Errorf("%w: %w", ErrCanceled, err)
	default:
		return err
	}
}
