package governor

import (
	"strings"
	"testing"
)

// FuzzLimitsParse throws arbitrary flag text at the CLI limit parsers.
// Invariants: no panic; an accepted timeout is non-negative and an
// accepted row budget is non-negative; acceptance is trim-stable (the
// parsers strip surrounding space themselves, so pre-trimmed input must
// parse to the same value).
func FuzzLimitsParse(f *testing.F) {
	for _, seed := range []string{
		"", "0", "2s", "250ms", "1m30s", "30", "0.5", "-1s", "nan", "1e300",
		"3246", "10k", "2m", "1g", "-5", "10kk", "99999999999999999999", "k",
		"bogus", " 5k ", "১০", "0x10", "+3", "1_000",
	} {
		f.Add(seed, seed)
	}
	f.Fuzz(func(t *testing.T, timeout, rows string) {
		d, derr := ParseTimeout(timeout)
		if derr == nil {
			if d < 0 {
				t.Fatalf("ParseTimeout(%q) accepted negative duration %v", timeout, d)
			}
			d2, err2 := ParseTimeout(strings.TrimSpace(timeout))
			if err2 != nil || d2 != d {
				t.Fatalf("ParseTimeout trim-instability on %q: (%v,%v) vs (%v,%v)", timeout, d, derr, d2, err2)
			}
		}
		n, nerr := ParseRows(rows)
		if nerr == nil {
			if n < 0 {
				t.Fatalf("ParseRows(%q) accepted negative budget %d", rows, n)
			}
			n2, err2 := ParseRows(strings.TrimSpace(rows))
			if err2 != nil || n2 != n {
				t.Fatalf("ParseRows trim-instability on %q: (%d,%v) vs (%d,%v)", rows, n, nerr, n2, err2)
			}
		}
		// ParseLimits must agree with its parts.
		l, lerr := ParseLimits(timeout, rows, 0, 0)
		if (lerr == nil) != (derr == nil && nerr == nil) {
			t.Fatalf("ParseLimits(%q,%q) err=%v inconsistent with parts (%v, %v)", timeout, rows, lerr, derr, nerr)
		}
		if lerr == nil && (l.Deadline != d || l.MaxRows != n) {
			t.Fatalf("ParseLimits(%q,%q) = %+v, parts (%v, %d)", timeout, rows, l, d, n)
		}
	})
}
