package relquery_test

import (
	"bytes"
	"math/rand"
	"testing"

	"relquery"

	"relquery/internal/algebra"
	"relquery/internal/cnf"
	"relquery/internal/decide"
	"relquery/internal/qbf"
	"relquery/internal/reduction"
	"relquery/internal/relation"
	"relquery/internal/sat"
	"relquery/internal/tableau"
)

// TestGrandTour drives a full pipeline end to end for a batch of random
// formulas: build the gadget, serialize and reload it through the text
// codec, evaluate φ_G with both engines, and decide every catalogued
// problem on it, cross-checking each against the direct solvers.
func TestGrandTour(t *testing.T) {
	rng := rand.New(rand.NewSource(2026))
	for trial := 0; trial < 6; trial++ {
		var g *cnf.Formula
		var err error
		if trial%2 == 0 {
			g, _, err = cnf.PlantedSatisfiable3CNF(rng, 4+rng.Intn(2), 3+rng.Intn(2))
		} else {
			g, err = cnf.Unsatisfiable3CNF(rng, 3, 8)
		}
		if err != nil {
			t.Fatal(err)
		}
		g, _ = cnf.Compact(g)
		grandTour(t, rng, g)
	}
}

func grandTour(t *testing.T, rng *rand.Rand, g *cnf.Formula) {
	t.Helper()

	// 1. Build the gadget and round-trip it through the codec.
	c, err := reduction.New(g)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := relation.WriteRelation(&buf, c.OperandName(), c.R); err != nil {
		t.Fatal(err)
	}
	db, err := relation.ReadDatabase(&buf)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := db.Get(c.OperandName())
	if err != nil || !loaded.Equal(c.R) {
		t.Fatalf("codec round trip lost the gadget: %v", err)
	}

	// 2. Evaluate φ_G three ways: materialize, tableau, and the optimizer
	// applied first. All must agree with Lemma 1's prediction.
	phi, err := c.PhiG()
	if err != nil {
		t.Fatal(err)
	}
	want, err := c.ExpectedPhiResult()
	if err != nil {
		t.Fatal(err)
	}
	tb, err := tableau.New(phi)
	if err != nil {
		t.Fatal(err)
	}
	viaTableau, err := tb.Eval(db)
	if err != nil {
		t.Fatal(err)
	}
	if !viaTableau.Equal(want) {
		t.Fatalf("tableau eval violates Lemma 1 for %v", g)
	}
	opt, err := algebra.Optimize(phi)
	if err != nil {
		t.Fatal(err)
	}
	tbOpt, err := tableau.New(opt)
	if err != nil {
		t.Fatal(err)
	}
	viaOpt, err := tbOpt.Eval(db)
	if err != nil {
		t.Fatal(err)
	}
	if !viaOpt.Equal(want) {
		t.Fatalf("optimized expression changed the result for %v", g)
	}

	// 3. Decide every catalogued problem and cross-check.
	satisfiable, _, err := sat.Satisfiable(g)
	if err != nil {
		t.Fatal(err)
	}
	// membership (NP) + fixpoint (co-NP).
	mres, err := relquery.SATViaMembership(g)
	if err != nil || mres.Answer != satisfiable {
		t.Fatalf("membership route: %+v %v (want %v)", mres, err, satisfiable)
	}
	fres, err := relquery.UNSATViaFixpoint(g)
	if err != nil || fres.Answer != !satisfiable {
		t.Fatalf("fixpoint route: %+v %v", fres, err)
	}
	// result verification (Dᵖ): the true result must verify; a corrupted
	// conjecture must not.
	cmp, err := decide.ResultEquals(phi, db, want, decide.Budget{})
	if err != nil || !cmp.Holds {
		t.Fatalf("ResultEquals(truth): %+v %v", cmp, err)
	}
	corrupted := want.Clone()
	corrupted.MustAdd(corruptTuple(want))
	cmp, err = decide.ResultEquals(phi, db, corrupted, decide.Budget{})
	if err != nil || cmp.Holds {
		t.Fatalf("ResultEquals(corrupted) accepted: %+v %v", cmp, err)
	}
	// counting (#P).
	count, err := decide.Count(phi, db, decide.Budget{})
	if err != nil {
		t.Fatal(err)
	}
	aG, err := sat.CountModels(g)
	if err != nil {
		t.Fatal(err)
	}
	if reduction.CountingIdentity(c, count) != aG {
		t.Fatalf("counting identity: |φ|=%d a(G)=%d", count, aG)
	}
	// cardinality window (Dᵖ).
	atLeast, err := decide.CardAtLeast(phi, db, count, decide.Budget{})
	if err != nil || !atLeast {
		t.Fatalf("CardAtLeast(count): %v %v", atLeast, err)
	}
	atMost, err := decide.CardAtMost(phi, db, count, decide.Budget{})
	if err != nil || !atMost {
		t.Fatalf("CardAtMost(count): %v %v", atMost, err)
	}
	// Π₂ᵖ comparison on a derived ∀∃ sentence.
	universal := []int{1 + rng.Intn(g.NumVars)}
	inst := &qbf.Instance{G: g, Universal: universal}
	direct, err := qbf.Solve(inst)
	if err != nil {
		t.Fatal(err)
	}
	via4, err := relquery.Q3SATViaQueryComparison(inst)
	if err != nil || via4.Answer != direct.Holds {
		t.Fatalf("Theorem 4 route: %+v %v (want %v)", via4, err, direct.Holds)
	}
	via5, err := relquery.Q3SATViaRelationComparison(inst)
	if err != nil || via5.Answer != direct.Holds {
		t.Fatalf("Theorem 5 route: %+v %v (want %v)", via5, err, direct.Holds)
	}
}

// corruptTuple builds a tuple over r's scheme that cannot occur in any
// gadget result (a fresh symbol in every column).
func corruptTuple(r *relation.Relation) relation.Tuple {
	t := make(relation.Tuple, r.Scheme().Len())
	for i := range t {
		t[i] = "zz-corrupt"
	}
	return t
}
