package relquery_test

import (
	"fmt"

	"relquery"
)

// ExampleEval evaluates a parsed project–join query.
func ExampleEval() {
	r, _ := relquery.FromRows(relquery.MustScheme("A", "B", "C"),
		[]string{"1", "x", "p"},
		[]string{"2", "x", "q"},
	)
	db := relquery.SingleRelation("T", r)
	q, _ := relquery.ParseExprForDatabase("pi[A C](pi[A B](T) * pi[B C](T))", db)
	out, _ := relquery.Eval(q, db)
	fmt.Print(relquery.RenderSorted(out))
	// Output:
	// A  C
	// 1  p
	// 1  q
	// 2  p
	// 2  q
}

// ExampleSATViaMembership decides satisfiability of the paper's worked
// example through the query engine.
func ExampleSATViaMembership() {
	res, _ := relquery.SATViaMembership(relquery.PaperExample())
	fmt.Println(res.Answer)
	// Output:
	// true
}

// ExampleCountModelsViaQuery counts satisfying assignments via Theorem 3's
// identity a(G) = |φ_G(R_G)| − 7m − 1.
func ExampleCountModelsViaQuery() {
	n, _ := relquery.CountModelsViaQuery(relquery.PaperExample())
	fmt.Println(n)
	// Output:
	// 20
}

// ExampleNewConstruction builds the paper's gadget relation.
func ExampleNewConstruction() {
	c, _ := relquery.NewConstruction(relquery.PaperExample())
	fmt.Println(c.R.Len(), "rows over", c.Scheme())
	// Output:
	// 22 rows over F1 F2 F3 X1 X2 X3 X4 X5 Y{1,2} Y{1,3} Y{2,3} S
}

// ExampleOptimize rewrites a query with projection pushdown.
func ExampleOptimize() {
	schemes := map[string]relquery.Scheme{
		"T": relquery.MustScheme("A", "B", "C", "D"),
		"U": relquery.MustScheme("C", "E"),
	}
	e, _ := relquery.ParseExpr("pi[A E](T * U)", schemes)
	opt, _ := relquery.Optimize(e)
	fmt.Println(opt)
	// Output:
	// pi[A E](pi[A C](T) * U)
}

// ExampleResultEquals verifies a conjectured query result — the paper's
// Dᵖ-complete problem.
func ExampleResultEquals() {
	r, _ := relquery.FromRows(relquery.MustScheme("A", "B"),
		[]string{"1", "x"},
	)
	db := relquery.SingleRelation("T", r)
	q, _ := relquery.ParseExprForDatabase("pi[A](T)", db)
	conjecture, _ := relquery.FromRows(relquery.MustScheme("A"), []string{"1"})
	cmp, _ := relquery.ResultEquals(q, db, conjecture, relquery.DecisionBudget{})
	fmt.Println(cmp.Holds)
	// Output:
	// true
}
