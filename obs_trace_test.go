package relquery_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"relquery/internal/algebra"
	"relquery/internal/join"
	"relquery/internal/obs"
	"relquery/internal/reduction"
)

// maxJoinRows walks a span tree and returns the largest cardinality any
// join span materialized (its output or an intermediate binary join
// inside it) — the trace's view of the paper's max-intermediate number.
func maxJoinRows(sp *obs.Span) int {
	if sp == nil {
		return 0
	}
	best := 0
	if sp.Op == obs.OpJoin {
		best = sp.OutputRows
		if sp.MaxIntermediate > best {
			best = sp.MaxIntermediate
		}
	}
	for _, c := range sp.Children {
		if m := maxJoinRows(c); m > best {
			best = m
		}
	}
	return best
}

// TestExplainAnalyzeOnGadgets runs EXPLAIN ANALYZE over φ_G(R_G) for each
// Lemma 1 gadget family and checks that the trace exposes the paper's
// phenomenon: the join node's observed cardinality dwarfs both the input
// R_G and the final result (which Lemma 1 pins to |R_G ∪ R̃_G|), the
// node carries a positive AGM bound dominating its observed size, and the
// traced cardinalities agree exactly with the untraced sequential engine.
func TestExplainAnalyzeOnGadgets(t *testing.T) {
	for name, g := range lemma1Families(t) {
		t.Run(name, func(t *testing.T) {
			c, err := reduction.New(g)
			if err != nil {
				t.Fatal(err)
			}
			phi, err := c.PhiG()
			if err != nil {
				t.Fatal(err)
			}
			db := c.Database()

			// Untraced sequential reference.
			ref := algebra.Evaluator{Order: join.Greedy}
			want, err := ref.Eval(phi, db)
			if err != nil {
				t.Fatal(err)
			}

			// Traced evaluation.
			col := &obs.Collector{}
			ev := algebra.Evaluator{Order: join.Greedy, Collector: col}
			got, err := ev.Eval(phi, db)
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(want) {
				t.Fatal("tracing changed the result")
			}

			root := col.Trace().Root()
			if root == nil {
				t.Fatal("no trace collected")
			}
			if root.OutputRows != want.Len() {
				t.Errorf("root span rows=%d, result has %d", root.OutputRows, want.Len())
			}

			// The trace's blow-up equals the metrics snapshot's: spans and
			// counters are two views of the same evaluation.
			traceMax := maxJoinRows(root)
			snap := col.Metrics.Snapshot()
			if traceMax != int(snap.MaxIntermediate) {
				t.Errorf("trace max join rows=%d, metrics MaxIntermediate=%d", traceMax, snap.MaxIntermediate)
			}

			// The paper's phenomenon, visible in the trace: some join node
			// materializes more than the input — and on the non-trivial
			// families (the worked example is too small to blow up) far more
			// than input and output both.
			if traceMax <= c.R.Len() {
				t.Errorf("no blow-up in trace: max join rows=%d, input=%d", traceMax, c.R.Len())
			}
			blowup := name != "paper"
			if blowup && traceMax <= want.Len() {
				t.Errorf("expected intermediate above the output: max join rows=%d, output=%d",
					traceMax, want.Len())
			}

			// Every join span's AGM bound dominates its observed output.
			var checkAGM func(sp *obs.Span)
			checkAGM = func(sp *obs.Span) {
				if sp.Op == obs.OpJoin {
					if sp.AGMBound <= 0 {
						t.Errorf("join span %q has no AGM bound", sp.Label)
					} else if float64(sp.OutputRows) > sp.AGMBound+1e-6 {
						t.Errorf("join span %q: rows=%d exceeds AGM bound %g",
							sp.Label, sp.OutputRows, sp.AGMBound)
					}
				}
				for _, ch := range sp.Children {
					checkAGM(ch)
				}
			}
			checkAGM(root)

			// The rendering carries every promised annotation: cardinality,
			// width, wall time, algorithm, AGM bound and (with caching on)
			// per-node cache status.
			text, err := algebra.ExplainAnalyzeWith(&algebra.Evaluator{Order: join.Greedy, Cache: true}, phi, db)
			if err != nil {
				t.Fatal(err)
			}
			annotations := []string{"rows=", "width=", "wall=", "alg=", "agm≤", "cache="}
			if blowup {
				// The blow-up node must advertise its peak intermediate.
				annotations = append(annotations, "peak=")
			}
			for _, want := range annotations {
				if !bytes.Contains([]byte(text), []byte(want)) {
					t.Errorf("ExplainAnalyze output missing %q:\n%s", want, text)
				}
			}
		})
	}
}

// TestTraceJSONRoundTrip writes a gadget evaluation's trace as JSON and
// parses it back, checking the -trace payload is well-formed and carries
// the span tree and metrics.
func TestTraceJSONRoundTrip(t *testing.T) {
	c, err := reduction.New(lemma1Families(t)["paper"])
	if err != nil {
		t.Fatal(err)
	}
	phi, err := c.PhiG()
	if err != nil {
		t.Fatal(err)
	}
	col := &obs.Collector{}
	ev := algebra.Evaluator{Order: join.Greedy, Collector: col}
	if _, err := ev.Eval(phi, c.Database()); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := col.Trace().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded obs.Trace
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("trace JSON does not parse: %v", err)
	}
	if len(decoded.Roots) != 1 {
		t.Fatalf("decoded %d roots, want 1", len(decoded.Roots))
	}
	if decoded.Roots[0].OutputRows != col.Trace().Root().OutputRows {
		t.Error("root cardinality lost in JSON round trip")
	}
	if decoded.Metrics.Joins == 0 {
		t.Error("metrics lost in JSON round trip")
	}
}

// TestTraceSnapshotWhileRunning snapshots collector metrics concurrently
// with a parallelism-8 traced evaluation — the race the deprecated
// join.Stats had. Run under -race in CI.
func TestTraceSnapshotWhileRunning(t *testing.T) {
	c, err := reduction.New(lemma1Families(t)["xorchain"])
	if err != nil {
		t.Fatal(err)
	}
	phi, err := c.PhiG()
	if err != nil {
		t.Fatal(err)
	}
	db := c.Database()

	col := &obs.Collector{}
	stop := make(chan struct{})
	done := make(chan struct{})
	var last obs.MetricsSnapshot
	go func() {
		defer close(done)
		for {
			// Counters are monotone; a mid-run snapshot may be skewed across
			// fields but must never go backwards per field.
			snap := col.Metrics.Snapshot()
			if snap.Joins < last.Joins || snap.TuplesEmitted < last.TuplesEmitted {
				t.Error("mid-run snapshot went backwards")
				return
			}
			last = snap
			select {
			case <-stop:
				return
			default:
			}
		}
	}()
	ev := algebra.Evaluator{Order: join.Greedy, Parallelism: 8, Cache: true, Collector: col}
	_, err = ev.Eval(phi, db)
	close(stop)
	<-done
	if err != nil {
		t.Fatal(err)
	}
}
