// Benchmarks for the Yannakakis full reducer on the acyclic blow-up
// families: the greedy binary plan materializes the quadratic dangling
// cross product, the full reducer deletes the dangling tuples first and
// never materializes above the output. Recorded numbers live in
// BENCH_acyclic.txt (regenerate with `make acyclic-bench`); the shape
// that must hold is peak_rows collapsing to ≤ output + largest input
// under yannakakis and auto.
package relquery_test

import (
	"fmt"
	"testing"

	"relquery/internal/algebra"
	"relquery/internal/join"
	"relquery/internal/obs"
	"relquery/internal/relation"
)

// BenchmarkAcyclicYannakakis evaluates each acyclic family with the
// greedy hash plan, the forced generic join, the forced full reducer,
// and the full auto selector. Each configuration reports the peak
// materialized join cardinality (peak_rows) and the root join node's AGM
// bound (agm_bound) so the before/after collapse is visible in the
// benchmark output itself.
func BenchmarkAcyclicYannakakis(b *testing.B) {
	families, err := buildAcyclicFamilies()
	if err != nil {
		b.Fatal(err)
	}
	for _, name := range []string{"path", "star", "snowflake"} {
		fam := families[name]
		for _, cfg := range []struct {
			name string
			ev   func() algebra.Evaluator
		}{
			{"greedy", func() algebra.Evaluator {
				return algebra.Evaluator{Order: join.Greedy}
			}},
			{"wcoj", func() algebra.Evaluator {
				return algebra.Evaluator{Algorithm: join.Generic{}, Order: join.Greedy}
			}},
			{"yannakakis", func() algebra.Evaluator {
				return algebra.Evaluator{Algorithm: join.Yannakakis{}, Order: join.Greedy}
			}},
			{"auto", func() algebra.Evaluator {
				return algebra.Evaluator{Order: join.Greedy, AutoWCOJ: true, AutoYannakakis: true}
			}},
		} {
			b.Run(fmt.Sprintf("%s/%s", name, cfg.name), func(b *testing.B) {
				b.ReportAllocs()
				var peak int
				var bound float64
				for i := 0; i < b.N; i++ {
					col := &obs.Collector{}
					ev := cfg.ev()
					ev.Collector = col
					if _, err := ev.Eval(fam.expr, fam.db); err != nil {
						b.Fatal(err)
					}
					root := col.Trace().Root()
					peak = maxJoinRowsBench(root)
					bound = rootJoinAGMBound(root)
				}
				b.ReportMetric(float64(peak), "peak_rows")
				b.ReportMetric(bound, "agm_bound")
			})
		}
	}
}

// BenchmarkFullReducerDirect measures the full reducer head-to-head with
// the greedy binary plan on the path family's relations, without the
// evaluator around it.
func BenchmarkFullReducerDirect(b *testing.B) {
	families, err := buildAcyclicFamilies()
	if err != nil {
		b.Fatal(err)
	}
	fam := families["path"]
	rels := relsOf(b, fam)
	b.Run("greedy-hash", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := join.Multi(rels, join.Hash{}, join.Greedy, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("yannakakis", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := (join.Yannakakis{}).JoinAll(rels); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// relsOf materializes a family's base relations in deterministic order.
func relsOf(b *testing.B, fam acyclicFamily) []*relation.Relation {
	b.Helper()
	rels := make([]*relation.Relation, 0, len(fam.db))
	for _, name := range fam.db.Names() {
		r, err := fam.db.Get(name)
		if err != nil {
			b.Fatal(err)
		}
		rels = append(rels, r)
	}
	return rels
}
