package relquery_test

import (
	"bytes"
	"strings"
	"testing"

	"relquery"
)

// TestFacadeEndToEnd drives the public API exactly as the README's
// quickstart does: relations, parsing, evaluation, the paper's gadget, and
// the atlas routes.
func TestFacadeEndToEnd(t *testing.T) {
	r, err := relquery.FromRows(relquery.MustScheme("A", "B", "C"),
		[]string{"1", "x", "p"},
		[]string{"2", "x", "q"},
	)
	if err != nil {
		t.Fatal(err)
	}
	db := relquery.SingleRelation("T", r)
	e, err := relquery.ParseExprForDatabase("pi[A C](pi[A B](T) * pi[B C](T))", db)
	if err != nil {
		t.Fatal(err)
	}
	out, err := relquery.Eval(e, db)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 4 { // both A values pair with both C values through B=x
		t.Errorf("eval = %d tuples, want 4", out.Len())
	}

	// Tableau engine agrees.
	tb, err := relquery.NewTableau(e)
	if err != nil {
		t.Fatal(err)
	}
	out2, err := tb.Eval(db)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Equal(out2) {
		t.Error("tableau eval disagrees with materializing eval")
	}

	// Decision procedures.
	cmp, err := relquery.ResultEquals(e, db, out, relquery.DecisionBudget{})
	if err != nil || !cmp.Holds {
		t.Errorf("ResultEquals: %+v %v", cmp, err)
	}
	n, err := relquery.CountResult(e, db, relquery.DecisionBudget{})
	if err != nil || n != 4 {
		t.Errorf("CountResult = %d, %v", n, err)
	}
}

func TestFacadePaperPipeline(t *testing.T) {
	g := relquery.PaperExample()
	c, err := relquery.NewConstruction(g)
	if err != nil {
		t.Fatal(err)
	}
	if c.R.Len() != 22 {
		t.Errorf("|R_G| = %d", c.R.Len())
	}
	if err := relquery.VerifyLemma1(g); err != nil {
		t.Error(err)
	}
	res, err := relquery.SATViaMembership(g)
	if err != nil || !res.Answer {
		t.Errorf("SATViaMembership: %+v %v", res, err)
	}
	count, err := relquery.CountModelsViaQuery(g)
	if err != nil || count != 20 {
		t.Errorf("CountModelsViaQuery = %d, %v (paper example has 20 models)", count, err)
	}
}

func TestFacadeCNFRoundTrip(t *testing.T) {
	g, err := relquery.ParseCNF("(x1 + ~x2 + x3)(x2 + x3 + x4)(~x1 + ~x3 + ~x4)")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := relquery.WriteDIMACS(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := relquery.ParseDIMACS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.String() != g.String() {
		t.Errorf("round trip changed formula: %v", back)
	}
	sat, model, err := relquery.Satisfiable(g)
	if err != nil || !sat || !g.Eval(model) {
		t.Errorf("Satisfiable: %v %v %v", sat, model, err)
	}
}

func TestFacadeExperiments(t *testing.T) {
	var buf bytes.Buffer
	if err := relquery.RunExperiments([]string{"E0"}, &buf, 1, true); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "22 rows") {
		t.Errorf("E0 output:\n%s", buf.String())
	}
}

func TestFacadeRelationCodec(t *testing.T) {
	r, err := relquery.FromRows(relquery.MustScheme("A", "B"), []string{"1", "2"})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := relquery.WriteRelation(&buf, "R", r); err != nil {
		t.Fatal(err)
	}
	db, err := relquery.ReadDatabase(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	back, err := db.Get("R")
	if err != nil || !back.Equal(r) {
		t.Errorf("codec round trip: %v %v", back, err)
	}
}
