// Parity and acceptance tests for the acyclic fast path: GYO detection
// plus the Yannakakis full reducer behind -join=auto. The families here
// are the acyclic counterpart of the Lemma 1 gadgets: path, star and
// snowflake hypergraphs seeded with dangling tuples so every binary plan
// the greedy planner picks materializes a quadratic intermediate, while
// the full reducer's peak stays within output + largest input.
package relquery_test

import (
	"fmt"
	"strings"
	"testing"

	"relquery/internal/algebra"
	"relquery/internal/join"
	"relquery/internal/obs"
	"relquery/internal/reduction"
	"relquery/internal/relation"
)

// acyclicFamily is one acyclic blow-up workload: a database, the n-ary
// join over it, and the family's scale knob (every relation holds
// scale+1 tuples; greedy peaks at scale²+1, the output is scale+1).
type acyclicFamily struct {
	db    relation.Database
	expr  algebra.Expr
	scale int
}

// acyclicFamilies builds the three shapes for a test.
func acyclicFamilies(t *testing.T) map[string]acyclicFamily {
	t.Helper()
	families, err := buildAcyclicFamilies()
	if err != nil {
		t.Fatal(err)
	}
	return families
}

// buildAcyclicFamilies builds the three shapes. Every relation in a
// family has the same cardinality, so the greedy planner's size products
// all tie and its deterministic first-pair tie-break walks straight into
// the quadratic pair — the same trap for both the actual-size and the
// estimated planner. Shared with the acyclic benchmarks.
func buildAcyclicFamilies() (map[string]acyclicFamily, error) {
	var firstErr error
	mustJoin := func(ops ...algebra.Expr) algebra.Expr {
		e, err := algebra.JoinAll(ops...)
		if err != nil && firstErr == nil {
			firstErr = err
		}
		return e
	}
	newRel := func(attrs ...string) *relation.Relation {
		s, err := relation.NewScheme(toAttrs(attrs)...)
		if err != nil && firstErr == nil {
			firstErr = err
		}
		return relation.New(s)
	}
	op := func(name string, r *relation.Relation) algebra.Expr {
		return algebra.MustOperand(name, r.Scheme())
	}
	families := map[string]acyclicFamily{}

	// Path A–B–C–D: n dangling tuples on each of the two outer legs.
	{
		const n = 16
		r1, r2, r3 := newRel("A", "B"), newRel("B", "C"), newRel("C", "D")
		for i := 0; i < n; i++ {
			r1.MustAdd(relation.TupleOf(fmt.Sprintf("a%d", i), "b0"))
			r2.MustAdd(relation.TupleOf("b0", fmt.Sprintf("c%d", i)))
			r3.MustAdd(relation.TupleOf("c*", fmt.Sprintf("d%d", i)))
		}
		r1.MustAdd(relation.TupleOf("a*", "b1"))
		r2.MustAdd(relation.TupleOf("b1", "c*"))
		r3.MustAdd(relation.TupleOf("c*", fmt.Sprintf("d%d", n)))
		db := relation.Database{"R1": r1, "R2": r2, "R3": r3}
		families["path"] = acyclicFamily{db, mustJoin(op("R1", r1), op("R2", r2), op("R3", r3)), n}
	}

	// Star around hub attribute A: two legs fan out on the hub value h0,
	// the third leg only knows h1.
	{
		const f = 12
		l1, l2, l3 := newRel("A", "B"), newRel("A", "C"), newRel("A", "D")
		for i := 0; i < f; i++ {
			l1.MustAdd(relation.TupleOf("h0", fmt.Sprintf("b%d", i)))
			l2.MustAdd(relation.TupleOf("h0", fmt.Sprintf("c%d", i)))
			l3.MustAdd(relation.TupleOf("h1", fmt.Sprintf("d%d", i)))
		}
		l1.MustAdd(relation.TupleOf("h1", "b*"))
		l2.MustAdd(relation.TupleOf("h1", "c*"))
		l3.MustAdd(relation.TupleOf("h1", fmt.Sprintf("d%d", f)))
		db := relation.Database{"L1": l1, "L2": l2, "L3": l3}
		families["star"] = acyclicFamily{db, mustJoin(op("L1", l1), op("L2", l2), op("L3", l3)), f}
	}

	// Snowflake: a fact relation over A B C with one dimension arm per
	// attribute; the B arm kills the fat a0 block, the C arm fans the one
	// surviving chain out to the output.
	{
		const f = 10
		fact := newRel("A", "B", "C")
		arm1, arm2, arm3 := newRel("A", "D"), newRel("B", "E"), newRel("C", "F")
		for i := 0; i < f; i++ {
			fact.MustAdd(relation.TupleOf("a0", fmt.Sprintf("b%d", i), fmt.Sprintf("c%d", i)))
			arm1.MustAdd(relation.TupleOf("a0", fmt.Sprintf("d%d", i)))
			arm2.MustAdd(relation.TupleOf(fmt.Sprintf("bdead%d", i), fmt.Sprintf("e%d", i)))
			arm3.MustAdd(relation.TupleOf("c*", fmt.Sprintf("f%d", i)))
		}
		fact.MustAdd(relation.TupleOf("a1", "b*", "c*"))
		arm1.MustAdd(relation.TupleOf("a1", "d*"))
		arm2.MustAdd(relation.TupleOf("b*", "e*"))
		arm3.MustAdd(relation.TupleOf("c*", fmt.Sprintf("f%d", f)))
		db := relation.Database{"FACT": fact, "D1": arm1, "D2": arm2, "D3": arm3}
		families["snowflake"] = acyclicFamily{db, mustJoin(op("FACT", fact), op("D1", arm1), op("D2", arm2), op("D3", arm3)), f}
	}
	return families, firstErr
}

// yannakakisSpans collects every join span the full reducer executed.
func yannakakisSpans(sp *obs.Span) []*obs.Span {
	if sp == nil {
		return nil
	}
	var out []*obs.Span
	if sp.Op == obs.OpJoin && sp.Algorithm == "yannakakis" {
		out = append(out, sp)
	}
	for _, c := range sp.Children {
		out = append(out, yannakakisSpans(c)...)
	}
	return out
}

func toAttrs(names []string) []relation.Attribute {
	out := make([]relation.Attribute, len(names))
	for i, n := range names {
		out[i] = relation.Attribute(n)
	}
	return out
}

// TestYannakakisKillsAcyclicBlowup is the tentpole's acceptance test: on
// each acyclic family the greedy binary plan materializes scale²+1
// tuples, while -join=auto detects acyclicity, runs Yannakakis, stays
// within output + largest input, and produces a byte-identical result —
// also when forced via -join=yannakakis and under parallelism 8 (the CI
// race job runs this file with -race).
func TestYannakakisKillsAcyclicBlowup(t *testing.T) {
	for name, fam := range acyclicFamilies(t) {
		t.Run(name, func(t *testing.T) {
			// Sequential greedy reference, traced: establish the blow-up.
			refCol := &obs.Collector{}
			ref := algebra.Evaluator{Order: join.Greedy, Collector: refCol}
			want, err := ref.Eval(fam.expr, fam.db)
			if err != nil {
				t.Fatal(err)
			}
			greedyPeak := maxJoinRows(refCol.Trace().Root())
			if wantPeak := fam.scale*fam.scale + 1; greedyPeak != wantPeak {
				t.Fatalf("family lost its blow-up: greedy peak = %d, want %d", greedyPeak, wantPeak)
			}
			if want.Len() != fam.scale+1 {
				t.Fatalf("output = %d tuples, want %d", want.Len(), fam.scale+1)
			}

			largestInput := 0
			for _, name := range fam.db.Names() {
				r, err := fam.db.Get(name)
				if err != nil {
					t.Fatal(err)
				}
				if r.Len() > largestInput {
					largestInput = r.Len()
				}
			}

			// -join=auto, traced: the three-way selector must pick
			// Yannakakis and collapse the peak.
			col := &obs.Collector{}
			auto := algebra.Evaluator{Order: join.Greedy, AutoWCOJ: true, AutoYannakakis: true, Collector: col}
			got, err := auto.Eval(fam.expr, fam.db)
			if err != nil {
				t.Fatal(err)
			}
			if renderAs(t, got, want.Scheme()) != relation.RenderSorted(want) {
				t.Fatal("auto rendering not identical to sequential greedy engine")
			}
			spans := yannakakisSpans(col.Trace().Root())
			if len(spans) != 1 {
				t.Fatalf("auto ran %d yannakakis spans, want 1", len(spans))
			}
			sp := spans[0]
			if sp.Structure != obs.StructureAcyclic {
				t.Errorf("span structure = %q, want %q", sp.Structure, obs.StructureAcyclic)
			}
			if sp.Semijoins == 0 || sp.ReducedRows == 0 {
				t.Errorf("span carries no reducer counters: semijoins=%d reduced=%d", sp.Semijoins, sp.ReducedRows)
			}
			peak := maxJoinRows(col.Trace().Root())
			if limit := want.Len() + largestInput; peak > limit {
				t.Errorf("yannakakis peak %d exceeds output+largest input %d", peak, limit)
			}
			if peak >= greedyPeak {
				t.Errorf("yannakakis peak %d did not improve on greedy peak %d", peak, greedyPeak)
			}

			// Forced -join=yannakakis: same bytes.
			forced := algebra.Evaluator{Algorithm: join.Yannakakis{}, Order: join.Greedy}
			fgot, err := forced.Eval(fam.expr, fam.db)
			if err != nil {
				t.Fatal(err)
			}
			if renderAs(t, fgot, want.Scheme()) != relation.RenderSorted(want) {
				t.Fatal("forced yannakakis rendering differs from sequential engine")
			}

			// Parallelism 8 with the auto selector: child subtrees evaluate
			// concurrently, the n-ary node still full-reduces. Under -race.
			par := algebra.Evaluator{Order: join.Greedy, AutoWCOJ: true, AutoYannakakis: true, Parallelism: 8, Collector: &obs.Collector{}}
			pgot, err := par.Eval(fam.expr, fam.db)
			if err != nil {
				t.Fatalf("parallelism 8: %v", err)
			}
			if renderAs(t, pgot, want.Scheme()) != relation.RenderSorted(want) {
				t.Fatal("parallelism 8 rendering differs from sequential engine")
			}

			// Left-to-right sequential order parity: a different binary
			// plan, same bytes.
			seq := algebra.Evaluator{Order: join.Sequential}
			sgot, err := seq.Eval(fam.expr, fam.db)
			if err != nil {
				t.Fatal(err)
			}
			if renderAs(t, sgot, want.Scheme()) != relation.RenderSorted(want) {
				t.Fatal("sequential-order rendering differs from greedy engine")
			}
		})
	}
}

// TestAcyclicExplainAnalyze checks EXPLAIN ANALYZE under -join=auto
// advertises the detection verdict and the reducer's counters.
func TestAcyclicExplainAnalyze(t *testing.T) {
	fam := acyclicFamilies(t)["path"]
	ev := algebra.Evaluator{Order: join.Greedy, AutoWCOJ: true, AutoYannakakis: true}
	text, err := algebra.ExplainAnalyzeWith(&ev, fam.expr, fam.db)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"alg=yannakakis", "structure=acyclic", "semijoins=", "reduced=", "agm≤"} {
		if !strings.Contains(text, want) {
			t.Errorf("ExplainAnalyze output missing %q:\n%s", want, text)
		}
	}
	// The Lemma 1 gadgets stay on the wcoj arm: cyclic, marked as such.
	c, err := reduction.New(lemma1Families(t)["xorchain"])
	if err != nil {
		t.Fatal(err)
	}
	phi, err := c.PhiG()
	if err != nil {
		t.Fatal(err)
	}
	gev := algebra.Evaluator{Order: join.Greedy, AutoWCOJ: true, AutoYannakakis: true}
	text, err = algebra.ExplainAnalyzeWith(&gev, phi, c.Database())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "structure=cyclic") {
		t.Errorf("cyclic gadget not marked structure=cyclic:\n%s", text)
	}
	if strings.Contains(text, "alg=yannakakis") {
		t.Errorf("cyclic gadget routed to yannakakis:\n%s", text)
	}
}
